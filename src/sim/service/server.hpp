// CampaignServer — `campaignd`'s engine: a long-lived process that owns
// the EvalCache and a crash-safe simulation backlog (ISSUE 9 tentpole),
// serving queries through a three-tier latency stack (ISSUE 10):
//
//   tier 1  AnswerIndex (sim/service/index.hpp): an in-memory
//           fingerprint index over the EvalCache, built once at open
//           and maintained incrementally by directory-epoch checks and
//           same-process inserts.  A warm cell resolves with zero
//           directory scans, zero file reads and zero journal appends
//           (the cache entry itself is the durable record: a crash
//           before the answer publishes re-ingests the query, which
//           hits the index again and reproduces the identical answer).
//   tier 2  SubmitRing (sim/service/ring.hpp): same-process clients
//           enqueue RingOp pointers into a bounded lock-free MPSC ring
//           and spin-wait; the drain thread answers warm batches
//           entirely in memory — tens of microseconds, no syscalls.
//           Ring ops whose cells miss the index are admitted into the
//           SAME journaled backlog as file-wire queries, so the ring
//           is latency-only, never a weaker durability tier.
//   tier 3  the file wire (sim/service/wire.hpp): query-v1 and batched
//           query-v2 files in <root>/submit/, answers published
//           atomically in <root>/answers/.  The durability and
//           cross-process compatibility tier.  The submit poller is
//           epoch-gated: the directory is only LISTED when its stat
//           signature moved since the last pass.
//
// One poll_once() pass:
//
//   ingest     new query files are parsed (v1 or batched v2) into
//              per-part cell lists keyed by run_fingerprint.
//              Index-resident cells are answered in memory (hit path —
//              no simulation, no journal); the rest are deduplicated
//              into the journaled backlog (sim/service/backlog.hpp).
//              Admission control is PART-granular: a part whose fresh
//              cells would overflow the bounded backlog is shed whole
//              with status=retry-after while the rest of the batch
//              proceeds.  Malformed queries answer status=error.
//   supervise  the lease table (sim/service/lease.hpp) is scanned:
//              expired leases hand their cells back to the backlog;
//              a cell that has burned max_holds leases is poisoned and
//              its parts answer status=error for that cell.
//   publish    queries whose parts are all resolved get their answer
//              published (a file for wire clients; an in-memory
//              completion — plus optionally a file — for ring
//              clients); only AFTER a successful publish is the submit
//              file removed, so a crash at any point re-ingests the
//              query on restart.
//
// Worker threads drain the backlog under lease + heartbeat, running
// cells through per-machine ExperimentRunners that share one cache
// directory, with the campaign engine's deterministic retry/backoff for
// TransientErrors.  Kill -9 the server at any moment: on restart the
// backlog journal replays every completed cell and the submit dir
// re-supplies every unanswered query — no query lost, none answered
// twice, answers bit-identical to an uninterrupted run (pinned by
// tests/sim/service_server_test.cpp and the CI chaos soaks).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fsepoch.hpp"
#include "schemes/factory.hpp"
#include "sim/campaign.hpp"
#include "sim/runner.hpp"
#include "sim/service/backlog.hpp"
#include "sim/service/index.hpp"
#include "sim/service/lease.hpp"
#include "sim/service/ring.hpp"
#include "sim/service/wire.hpp"

namespace snug::sim::service {

struct ServiceConfig {
  std::string root;       ///< service dir: submit/, answers/, journal
  std::string cache_dir;  ///< shared EvalCache directory
  /// Backlog journal path; "" resolves to <root>/backlog.journal.
  std::string journal;
  unsigned workers = 2;
  std::size_t max_backlog = 256;    ///< admission-control bound (0 = off)
  std::uint64_t lease_ms = 10'000;  ///< unrenewed leases expire after this
  std::uint32_t max_holds = 3;      ///< lease grants before poisoning
  std::uint64_t retry_after_ms = 250;  ///< backoff hint on shed queries
  std::size_t ring_capacity = 1024;    ///< SubmitRing slots (power of two)
  RetryPolicy retry;                ///< TransientError retry/backoff
  bool verbose = false;             ///< supervision log lines to stderr
};

/// Bound on retained answer files: on open, acked answers (no matching
/// submit file) beyond this cap are reaped oldest-name-first — the same
/// pattern as the stores' quarantine bound (kQuarantineCap).
inline constexpr std::size_t kAnswerKeepCap = 256;

class CampaignServer {
 public:
  struct Stats {
    std::uint64_t queries_ingested = 0;
    std::uint64_t queries_answered = 0;  ///< answers published (any status)
    std::uint64_t queries_rejected = 0;  ///< malformed — status=error
    std::uint64_t queries_shed = 0;      ///< admission — status=retry-after
    std::uint64_t cells_from_cache = 0;  ///< index hit path, no simulation
    std::uint64_t cells_simulated = 0;
    std::uint64_t retries = 0;           ///< TransientError re-attempts
    std::uint64_t leases_expired = 0;
    std::uint64_t reassignments = 0;     ///< expiries requeued
    std::uint64_t publish_failures = 0;  ///< answer writes retried
    BacklogScheduler::Counters backlog;
    LeaseTable::Counters leases;
    std::uint64_t journal_replayed = 0;  ///< cells resumed at startup
    std::uint64_t journal_stale_reaped = 0;
    std::uint64_t journal_discarded_bytes = 0;
    std::uint64_t journal_append_failures = 0;
    /// Published cache entries currently visible (EvalCache::refresh()).
    std::uint64_t cache_entries_visible = 0;
    // --- ISSUE 10: batching, ring and index telemetry ---
    std::uint64_t batches_ingested = 0;  ///< query-v2 files accepted
    std::uint64_t parts_total = 0;       ///< batch parts seen (incl. ring)
    std::uint64_t parts_rejected = 0;    ///< per-part status=error at ingest
    std::uint64_t parts_shed = 0;        ///< per-part admission sheds
    std::uint64_t ring_submits = 0;      ///< ops popped off the ring
    std::uint64_t ring_inline_answers = 0;  ///< completed at drain, no backlog
    std::uint64_t ring_backlogged = 0;   ///< ring ops that needed simulation
    std::uint64_t answers_reaped = 0;       ///< acked answers GC'd at open
    std::uint64_t answer_temps_reaped = 0;  ///< dead writers' answer temps
    std::uint64_t submit_scans_skipped = 0;  ///< epoch-gated poller skips
    AnswerIndex::Counters index;
  };

  explicit CampaignServer(ServiceConfig cfg);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// One ingest + supervise + publish pass; returns how much happened
  /// (queries ingested + expiries handled + answers published) so a
  /// caller can detect idleness.  Thread-safe against the workers but
  /// meant to be driven from one serving thread.
  std::size_t poll_once();

  /// Drives poll_once() every poll_ms until request_stop(), or — when
  /// idle_exit_polls > 0 — until that many consecutive passes saw no
  /// progress, no tracked query, no pending cell and no live lease
  /// (campaignd's drain-and-exit mode for scripted/CI use; 0 serves
  /// forever).  Returns the number of passes.
  std::size_t serve(std::size_t idle_exit_polls, std::uint64_t poll_ms);

  /// Makes serve() return after its current pass; workers stop at their
  /// next claim.  Called from a signal-ish context or another thread.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Tier 2 entry point: enqueues a same-process batch op.  False when
  /// the ring is full (backpressure — retry or fall back to the file
  /// wire; see RingClient in sim/service/client.hpp).  After a
  /// successful push the op belongs to the server until its state
  /// leaves kPending; the server completes EVERY accepted op, including
  /// at shutdown (status=error parts), so op->wait() always returns.
  [[nodiscard]] bool ring_submit(RingOp* op);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const AnswerIndex& index() const noexcept { return index_; }

  /// Milliseconds since construction — the lease clock.  Monotonic.
  [[nodiscard]] std::uint64_t now_ms() const;

 private:
  /// A simulation cell's runnable identity (the backlog stores only
  /// strings; workers need the real objects and a runner).
  struct WorkItem {
    trace::WorkloadCombo combo;
    schemes::SchemeSpec scheme;
    ExperimentRunner* runner = nullptr;
  };

  /// Memoised resolution of one (scenario text, scheme id) item: the
  /// parse + validate + combo expansion + fingerprint work that is
  /// identical for every repeat of the item.  Warm ring queries skip
  /// straight from here to index lookups.
  struct ResolvedItem {
    bool ok = false;
    std::string error;  ///< !ok: status=error diagnostic
    ScenarioSpec spec;
    schemes::SchemeSpec scheme;
    std::vector<trace::WorkloadCombo> combos;
    std::vector<std::uint64_t> fps;  ///< run_fingerprint per combo
    std::uint64_t runner_key = 0;
  };

  /// One cell of one part, in combo order.  `resolved` cells carry
  /// their IPCs inline (index hits — never journaled); the rest resolve
  /// through the backlog at publish time.
  struct TrackedCell {
    std::string combo;
    std::uint64_t fp = 0;
    std::vector<double> ipc;
    bool resolved = false;
  };

  struct TrackedPart {
    AnswerStatus status = AnswerStatus::kOk;
    std::string error;
    std::uint64_t retry_after_ms = 0;
    std::vector<TrackedCell> cells;
  };

  /// One client query being tracked until every part resolves.
  struct TrackedQuery {
    std::string id;
    bool batch = false;      ///< answer as answer-v2 (else v1 bytes)
    RingOp* ring = nullptr;  ///< non-null: complete in memory
    std::vector<TrackedPart> parts;
  };

  std::size_t ingest();
  std::size_t supervise();
  std::size_t publish();
  void worker_loop(const std::stop_token& stop, unsigned wid);
  void ring_loop(const std::stop_token& stop);
  void handle_ring_op(RingOp* op);
  void run_cell(unsigned wid, const BacklogCell& cell);
  ExperimentRunner& runner_for(const ScenarioSpec& spec,
                               std::uint64_t runner_key);
  [[nodiscard]] std::shared_ptr<const ResolvedItem> resolve_item(
      const BatchItem& item);
  /// Builds one part: resolve, index-lookup each cell, admit the
  /// misses (whole-part shed on admission refusal).  `allow_refresh`
  /// lets a miss trigger one index epoch check (the ring path, which
  /// does not ride the poller's per-pass refresh).
  [[nodiscard]] TrackedPart build_part(const BatchItem& item,
                                       bool allow_refresh);
  /// True when every part is resolved; fills the complete answer
  /// (poisoned cells turn their part status=error, healthy cells stay).
  [[nodiscard]] bool collect_answer(const TrackedQuery& tq,
                                    ServiceBatchAnswer& out);
  /// Publishes/completes a fully collected answer: wire queries get
  /// their answer file + submit retirement; ring ops complete in
  /// memory (file first when op->publish).  False on a failed publish
  /// (retried next pass).
  [[nodiscard]] bool finish_tracked(const TrackedQuery& tq,
                                    const ServiceBatchAnswer& answer);
  bool publish_text(const std::string& id, const std::string& text);
  /// Open-time answer-directory GC (see kAnswerKeepCap).
  void gc_answers();

  const ServiceConfig cfg_;
  const fault::Env* env_;
  const std::chrono::steady_clock::time_point start_;

  BacklogScheduler backlog_;
  LeaseTable lease_;
  AnswerIndex index_;
  SubmitRing ring_;

  mutable std::mutex runners_mu_;
  std::map<std::uint64_t, std::unique_ptr<ExperimentRunner>> runners_;

  std::mutex resolve_mu_;
  std::unordered_map<std::string, std::shared_ptr<const ResolvedItem>>
      resolve_memo_;

  mutable std::mutex state_mu_;
  std::map<std::uint64_t, WorkItem> work_;      ///< fp -> how to run it
  std::map<std::string, TrackedQuery> tracked_;  ///< id -> open query
  std::map<std::string, bool> answered_;         ///< ids already answered

  /// Submit-poller epoch (serving thread only): the directory is listed
  /// only when its stat signature moved or is too young to trust
  /// (common/fsepoch.hpp).  A failed reject-publish or query read
  /// forces the next pass to rescan (the file must be retried even
  /// though the directory did not change).
  DirEpoch submit_epoch_;
  bool submit_force_rescan_ = false;

  std::atomic<std::uint64_t> cells_from_cache_{0};
  std::atomic<std::uint64_t> cells_simulated_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> leases_expired_{0};
  std::atomic<std::uint64_t> reassignments_{0};
  std::atomic<std::uint64_t> publish_failures_{0};
  std::atomic<std::uint64_t> queries_ingested_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
  std::atomic<std::uint64_t> queries_rejected_{0};
  std::atomic<std::uint64_t> queries_shed_{0};
  std::atomic<std::uint64_t> batches_ingested_{0};
  std::atomic<std::uint64_t> parts_total_{0};
  std::atomic<std::uint64_t> parts_rejected_{0};
  std::atomic<std::uint64_t> parts_shed_{0};
  std::atomic<std::uint64_t> ring_submits_{0};
  std::atomic<std::uint64_t> ring_inline_answers_{0};
  std::atomic<std::uint64_t> ring_backlogged_{0};
  std::atomic<std::uint64_t> answers_reaped_{0};
  std::atomic<std::uint64_t> answer_temps_reaped_{0};
  std::atomic<std::uint64_t> submit_scans_skipped_{0};
  std::atomic<std::uint64_t> seq_{0};  ///< unique answer temp names
  std::atomic<bool> stop_{false};

  std::mutex wake_mu_;
  std::condition_variable_any wake_cv_;  ///< pending work for workers

  /// Ring drain parking (eventcount-lite): producers bump ring_pushes_
  /// after a push and notify only when the drain thread has parked.
  std::atomic<std::uint64_t> ring_pushes_{0};
  std::atomic<bool> drain_parked_{false};

  /// Declared last: workers and the ring drain must be joined (jthread
  /// dtor order) before any member they touch is destroyed.
  std::vector<std::jthread> workers_;
  std::jthread ring_thread_;
};

}  // namespace snug::sim::service
