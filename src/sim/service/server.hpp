// CampaignServer — `campaignd`'s engine: a long-lived process that owns
// the EvalCache and a crash-safe simulation backlog (ISSUE 9 tentpole).
//
// Clients drop ScenarioSpec x scheme queries into <root>/submit/ (the
// wire protocol in sim/service/wire.hpp) and poll <root>/answers/.  One
// poll_once() pass:
//
//   ingest     new query files are parsed and split into per-combo
//              cells keyed by run_fingerprint.  Cache-resident cells
//              are answered immediately (hit path — no simulation);
//              the rest are deduplicated into the journaled backlog
//              (sim/service/backlog.hpp).  A query whose fresh cells
//              would overflow the bounded backlog is SHED with an
//              explicit status=retry-after answer — admission control,
//              not an unbounded queue.  Malformed queries answer
//              status=error right away.
//   supervise  the lease table (sim/service/lease.hpp) is scanned:
//              expired leases hand their cells back to the backlog
//              (deterministic reassignment); a cell that has burned
//              max_holds leases is poisoned — quarantined out of the
//              reassignment loop — and its queries answer status=error
//              for that cell.  Graceful degradation, never a hang.
//   publish    queries whose cells are all done (or poisoned) get their
//              answer file written atomically; only AFTER a successful
//              publish is the submit file removed, so a crash at any
//              point re-ingests the query on restart.
//
// Worker threads drain the backlog under lease + heartbeat, running
// cells through per-machine ExperimentRunners that share one cache
// directory, with the campaign engine's deterministic retry/backoff for
// TransientErrors.  Kill -9 the server at any moment: on restart the
// backlog journal replays every completed cell and the submit dir
// re-supplies every unanswered query — no query lost, none answered
// twice, answers bit-identical to an uninterrupted run (pinned by
// tests/sim/service_server_test.cpp and the CI chaos soak).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "schemes/factory.hpp"
#include "sim/campaign.hpp"
#include "sim/runner.hpp"
#include "sim/service/backlog.hpp"
#include "sim/service/lease.hpp"
#include "sim/service/wire.hpp"

namespace snug::sim::service {

struct ServiceConfig {
  std::string root;       ///< service dir: submit/, answers/, journal
  std::string cache_dir;  ///< shared EvalCache directory
  /// Backlog journal path; "" resolves to <root>/backlog.journal.
  std::string journal;
  unsigned workers = 2;
  std::size_t max_backlog = 256;    ///< admission-control bound (0 = off)
  std::uint64_t lease_ms = 10'000;  ///< unrenewed leases expire after this
  std::uint32_t max_holds = 3;      ///< lease grants before poisoning
  std::uint64_t retry_after_ms = 250;  ///< backoff hint on shed queries
  RetryPolicy retry;                ///< TransientError retry/backoff
  bool verbose = false;             ///< supervision log lines to stderr
};

class CampaignServer {
 public:
  struct Stats {
    std::uint64_t queries_ingested = 0;
    std::uint64_t queries_answered = 0;  ///< answers published (any status)
    std::uint64_t queries_rejected = 0;  ///< malformed — status=error
    std::uint64_t queries_shed = 0;      ///< admission — status=retry-after
    std::uint64_t cells_from_cache = 0;  ///< hit path, no simulation
    std::uint64_t cells_simulated = 0;
    std::uint64_t retries = 0;           ///< TransientError re-attempts
    std::uint64_t leases_expired = 0;
    std::uint64_t reassignments = 0;     ///< expiries requeued
    std::uint64_t publish_failures = 0;  ///< answer writes retried
    BacklogScheduler::Counters backlog;
    LeaseTable::Counters leases;
    std::uint64_t journal_replayed = 0;  ///< cells resumed at startup
    std::uint64_t journal_stale_reaped = 0;
    std::uint64_t journal_discarded_bytes = 0;
    std::uint64_t journal_append_failures = 0;
    /// Published cache entries currently visible (EvalCache::refresh()).
    std::uint64_t cache_entries_visible = 0;
  };

  explicit CampaignServer(ServiceConfig cfg);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// One ingest + supervise + publish pass; returns how much happened
  /// (queries ingested + expiries handled + answers published) so a
  /// caller can detect idleness.  Thread-safe against the workers but
  /// meant to be driven from one serving thread.
  std::size_t poll_once();

  /// Drives poll_once() every poll_ms until request_stop(), or — when
  /// idle_exit_polls > 0 — until that many consecutive passes saw no
  /// progress, no tracked query, no pending cell and no live lease
  /// (campaignd's drain-and-exit mode for scripted/CI use; 0 serves
  /// forever).  Returns the number of passes.
  std::size_t serve(std::size_t idle_exit_polls, std::uint64_t poll_ms);

  /// Makes serve() return after its current pass; workers stop at their
  /// next claim.  Called from a signal-ish context or another thread.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// Milliseconds since construction — the lease clock.  Monotonic.
  [[nodiscard]] std::uint64_t now_ms() const;

 private:
  /// A simulation cell's runnable identity (the backlog stores only
  /// strings; workers need the real objects and a runner).
  struct WorkItem {
    trace::WorkloadCombo combo;
    schemes::SchemeSpec scheme;
    ExperimentRunner* runner = nullptr;
  };

  /// One client query being tracked until every cell resolves.
  struct TrackedQuery {
    std::string id;
    /// (combo name, fp) in the scenario's combo order — the answer's
    /// cell order, independent of completion order.
    std::vector<std::pair<std::string, std::uint64_t>> cells;
  };

  std::size_t ingest();
  std::size_t supervise();
  std::size_t publish();
  void worker_loop(const std::stop_token& stop, unsigned wid);
  void run_cell(unsigned wid, const BacklogCell& cell);
  ExperimentRunner& runner_for(const ScenarioSpec& spec,
                               std::uint64_t runner_key);
  bool publish_answer(const ServiceAnswer& answer);
  /// Error/retry-after short-circuit at ingest: publish, and on success
  /// retire the submit file.  False leaves the submit file for a retry
  /// next pass.
  bool answer_and_retire(const ServiceAnswer& answer);

  const ServiceConfig cfg_;
  const fault::Env* env_;
  const std::chrono::steady_clock::time_point start_;

  BacklogScheduler backlog_;
  LeaseTable lease_;

  mutable std::mutex runners_mu_;
  std::map<std::uint64_t, std::unique_ptr<ExperimentRunner>> runners_;

  mutable std::mutex state_mu_;
  std::map<std::uint64_t, WorkItem> work_;      ///< fp -> how to run it
  std::map<std::string, TrackedQuery> tracked_;  ///< id -> open query
  std::map<std::string, bool> answered_;         ///< ids already answered

  std::atomic<std::uint64_t> cells_from_cache_{0};
  std::atomic<std::uint64_t> cells_simulated_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> leases_expired_{0};
  std::atomic<std::uint64_t> reassignments_{0};
  std::atomic<std::uint64_t> publish_failures_{0};
  std::atomic<std::uint64_t> queries_ingested_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
  std::atomic<std::uint64_t> queries_rejected_{0};
  std::atomic<std::uint64_t> queries_shed_{0};
  std::atomic<std::uint64_t> seq_{0};  ///< unique answer temp names
  std::atomic<bool> stop_{false};

  std::mutex wake_mu_;
  std::condition_variable_any wake_cv_;  ///< pending work for workers

  /// Declared last: workers must be joined (jthread dtor) before any
  /// member they touch is destroyed.
  std::vector<std::jthread> workers_;
};

}  // namespace snug::sim::service
