// AnswerIndex — the reader-side fingerprint index over the EvalCache
// (ISSUE 10 tentpole, tier 1 of the hit-path latency stack).
//
// Before this index, every warm query paid one file read per cell
// (EvalCache::load) plus a journal append per hit — ~0.4 ms of syscalls
// for a result that never changes.  The index front-loads that work:
// on server open it scans the cache directory ONCE, validates each
// entry exactly the way EvalCache::load does (magic, version, count
// bound, exact size, payload CRC-32C), and pins the fingerprint -> IPC
// mapping in an open-addressing hash table.  A warm lookup is then a
// couple of L1-resident probes — zero directory scans, zero file
// reads, zero journal traffic.
//
// Freshness without rescans: other processes publish entries by atomic
// rename into the cache directory, which bumps the directory's mtime
// and link count.  maybe_refresh() stats the directory (one cheap
// metadata syscall — deliberately NOT through the fault seam: the
// epoch is a pure optimisation, never a durability decision) and only
// rescans when the (mtime_ns, entry count) epoch moved; the rescan
// itself is incremental — only file names not yet indexed are read.
// Same-process completions skip even that: the server insert()s each
// result as it stores it.
//
// Safety: the index can only ever DECLINE a hit it should have served
// (a store racing the epoch check) — the cell then re-simulates to the
// identical result and heals on the next refresh.  It can never serve
// a wrong answer: entries are CRC-validated on the way in, and an
// entry name embeds its fingerprint, so a name is never re-bound to
// different bytes (heals replace corrupt files, which were never
// indexed).  Corrupt entries found during a scan are quarantined with
// the stores' shared never-delete discipline (sim/store_recovery.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/fault.hpp"
#include "common/fsepoch.hpp"

namespace snug::sim::service {

class AnswerIndex {
 public:
  struct Counters {
    std::uint64_t entries = 0;      ///< fingerprints currently indexed
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rescans = 0;      ///< epoch moved -> incremental scan
    std::uint64_t epoch_checks = 0; ///< maybe_refresh() stat probes
    std::uint64_t files_indexed = 0;
    std::uint64_t files_rejected = 0;  ///< corrupt/stale at scan time
    std::uint64_t quarantined = 0;     ///< corrupt entries moved aside
  };

  /// Opens over `cache_dir` ("" disables: every lookup misses) and runs
  /// the initial full scan.
  explicit AnswerIndex(std::string cache_dir);

  AnswerIndex(const AnswerIndex&) = delete;
  AnswerIndex& operator=(const AnswerIndex&) = delete;

  /// The hit path: true (filling `ipc`) when `fp` is indexed.  Memory
  /// only — no syscalls.  Thread-safe (shared lock).
  [[nodiscard]] bool lookup(std::uint64_t fp, std::vector<double>& ipc);

  /// Records a result this process just stored (or computed): the index
  /// stays warm without waiting for an epoch rescan.  No-op for ipc
  /// empty/oversized or when the same fp is already indexed.
  void insert(std::uint64_t fp, const std::vector<double>& ipc);

  /// Epoch check: stat the directory; when its (mtime_ns, size)
  /// signature moved since the last scan — or is too young to trust
  /// (the racy-mtime rule, common/fsepoch.hpp) — incrementally index
  /// the file names not yet known.  Returns true when a rescan
  /// happened.  `force` skips the epoch short-circuit (tests; server
  /// open already scans).
  bool maybe_refresh(bool force = false);

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }

 private:
  struct Slot {
    std::uint64_t fp = 0;       ///< 0 = empty (fp 0 falls back to miss)
    std::uint32_t offset = 0;   ///< into pool_
    std::uint32_t count = 0;
  };

  // All three _locked helpers require mu_ held exclusively.
  void rescan_locked();
  void insert_locked(std::uint64_t fp, const double* ipc,
                     std::uint32_t count);
  void grow_locked();
  [[nodiscard]] bool index_file_locked(const std::string& name);

  const fault::Env* env_;
  std::string dir_;

  mutable std::shared_mutex mu_;
  std::vector<Slot> slots_;     ///< open addressing, power-of-two size
  std::vector<double> pool_;    ///< slot payloads, appended on insert
  std::size_t used_ = 0;
  std::unordered_set<std::string> known_;  ///< successfully indexed names
  DirEpoch epoch_;  ///< racy-mtime-guarded (common/fsepoch.hpp)
  Counters counters_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> quarantine_seq_{0};
};

}  // namespace snug::sim::service
