// RingClient — the same-process client of a CampaignServer (ISSUE 10).
//
// A ServiceClient (wire.hpp) talks to any campaignd over the file wire:
// durable, cross-process, ~milliseconds per round-trip.  A RingClient
// talks to a CampaignServer living in the SAME process over the
// lock-free submit ring: a warm batch answers in tens of microseconds.
// The ring is latency-only — when it is saturated the client falls
// back to the file wire transparently, and misses admitted off the
// ring land in the same journaled backlog as wire queries, so crash
// semantics are identical on either path.
#pragma once

#include <cstdint>
#include <string>

#include "sim/service/server.hpp"
#include "sim/service/wire.hpp"

namespace snug::sim::service {

class RingClient {
 public:
  /// `server` must outlive the client and every outstanding query().
  explicit RingClient(CampaignServer& server);

  /// Blocking batch query over the ring.  `publish` additionally writes
  /// the durable answers/<id>.answer file (the crash-soak contract —
  /// requires a file-name-safe id).  On a full ring the submit retries
  /// briefly, then falls back to the file wire (which always
  /// publishes).  False only when the fallback submit fails or times
  /// out; `error` (when given) carries the diagnostic.
  bool query(const ServiceBatchQuery& query, ServiceBatchAnswer& out,
             bool publish = false, std::string* error = nullptr);

  /// File-wire fallback budget for a saturated ring.
  std::uint64_t fallback_timeout_ms = 600'000;

  /// Ring submissions vs. file-wire fallbacks taken (telemetry).
  [[nodiscard]] std::uint64_t ring_queries() const noexcept {
    return ring_queries_;
  }
  [[nodiscard]] std::uint64_t wire_fallbacks() const noexcept {
    return wire_fallbacks_;
  }

 private:
  CampaignServer* server_;
  ServiceClient wire_;
  std::uint64_t ring_queries_ = 0;
  std::uint64_t wire_fallbacks_ = 0;
};

}  // namespace snug::sim::service
