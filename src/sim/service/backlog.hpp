// Crash-safe backlog scheduler for the campaign service (ISSUE 9).
//
// The backlog is the server's single source of truth for what work is
// pending, leased, finished or poisoned.  Cells are keyed by their
// run_fingerprint (which covers everything that affects the simulated
// IPCs), so identical cells from different queries deduplicate into one
// backlog entry, and completions persist through the same CRC-framed
// CampaignJournal the campaign engine uses for checkpoint/resume:
// a server killed -9 mid-backlog reopens the journal on restart,
// replays every completed cell, and re-runs only the missing ones —
// no query is lost, no cell is simulated twice, and the resumed
// answers are bit-identical to an uninterrupted run's (IPC bytes come
// from the journal, not a re-simulation).
//
// Admission control: the backlog is bounded.  admit() refuses a query
// whose FRESH cells would push the pending+leased population past
// max_pending — nothing is enqueued and the server answers
// status=retry-after — so a flooded service degrades to an explicit
// backpressure signal instead of an unbounded queue.
//
// The journal is keyed by a constant service fingerprint (not the cell
// grid, which grows as queries arrive); safety comes from the records
// themselves, each keyed by a run_fingerprint that covers machine,
// scale, workload and scheme.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snug::sim {
class CampaignJournal;
}  // namespace snug::sim

namespace snug::sim::service {

/// One unit of backlog work — a (workload combo, scheme) cell of some
/// query's scenario, plus the identity needed to run and report it.
struct BacklogCell {
  std::uint64_t fp = 0;       ///< run_fingerprint — the dedup/journal key
  std::string label;          ///< "combo/scheme" for fault plans and logs
  std::string combo;          ///< workload combo name
  std::string scheme;         ///< SchemeSpec::id()
  std::uint64_t runner_key = 0;  ///< config_fingerprint — picks the runner
};

/// FIFO scheduler over deduplicated cells with journal-backed
/// completion.  Thread-safe.
class BacklogScheduler {
 public:
  enum class State : std::uint8_t {
    kUnknown,   ///< never admitted
    kPending,   ///< queued, waiting for a worker
    kLeased,    ///< handed to a worker (lease live)
    kDone,      ///< completed — IPCs available
    kPoisoned,  ///< failed terminally — error available
  };

  struct Counters {
    std::uint64_t admitted = 0;       ///< fresh cells enqueued
    std::uint64_t deduplicated = 0;   ///< cells already known at admit
    std::uint64_t journal_hits = 0;   ///< cells completed by replay
    std::uint64_t shed = 0;           ///< admit() refusals (admission cap)
    std::uint64_t requeued = 0;       ///< lease-expiry reassignments
    std::uint64_t completed = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t duplicate_completions = 0;  ///< late completes ignored
  };

  /// `max_pending` bounds pending+leased cells (0 = unbounded);
  /// `journal_path` "" disables persistence (tests only — a real server
  /// always journals).
  BacklogScheduler(std::size_t max_pending, const std::string& journal_path);
  ~BacklogScheduler();

  BacklogScheduler(const BacklogScheduler&) = delete;
  BacklogScheduler& operator=(const BacklogScheduler&) = delete;

  /// Admits a query's cells.  Cells already known (any state) are
  /// deduplicated; cells found completed in the journal become kDone
  /// immediately.  If the remaining fresh cells would exceed
  /// max_pending, NOTHING new is enqueued and admit returns false (the
  /// shed query keeps no partial state).  On success the fresh cells'
  /// fingerprints are appended to `newly_pending`.
  [[nodiscard]] bool admit(const std::vector<BacklogCell>& cells,
                           std::vector<std::uint64_t>* newly_pending);

  /// Records a cache-hit completion for a cell never admitted: marks it
  /// kDone and journals it, so a restart replays cache answers too.
  /// No-op when the fp is already known.
  void inject_done(const BacklogCell& cell, const std::vector<double>& ipc);

  /// Pops the oldest pending cell into `out` and marks it kLeased.
  /// False when nothing is pending.
  [[nodiscard]] bool next_pending(BacklogCell& out);

  /// Returns a leased cell to the back of the pending queue (lease
  /// expired or grant denied).  No-op unless currently kLeased.
  void requeue(std::uint64_t fp);

  /// Completes a pending/leased cell: journals the IPCs and marks
  /// kDone.  False (counted as a duplicate) when the cell is already
  /// done or poisoned — a reassigned-then-finished straggler must not
  /// double-answer.
  [[nodiscard]] bool complete(std::uint64_t fp,
                              const std::vector<double>& ipc);

  /// Terminally fails a pending/leased cell with a diagnostic.
  void poison(std::uint64_t fp, const std::string& error);

  [[nodiscard]] State state(std::uint64_t fp) const;
  /// IPCs of a kDone cell; false otherwise.
  [[nodiscard]] bool result(std::uint64_t fp, std::vector<double>& ipc) const;
  /// Diagnostic of a kPoisoned cell ("" otherwise).
  [[nodiscard]] std::string poison_error(std::uint64_t fp) const;

  /// Pending + leased population (the admission-control quantity).
  [[nodiscard]] std::size_t backlog() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] Counters counters() const;

  // Journal pass-throughs for the server's stats line.
  [[nodiscard]] std::uint64_t journal_stale_reaped() const;
  [[nodiscard]] std::uint64_t journal_discarded_bytes() const;
  [[nodiscard]] std::uint64_t journal_append_failures() const;
  [[nodiscard]] std::size_t journal_replayed() const;

 private:
  struct Entry {
    State state = State::kUnknown;
    BacklogCell cell;
    std::vector<double> ipc;  ///< kDone
    std::string error;        ///< kPoisoned
  };

  void journal_append_locked(std::uint64_t fp,
                             const std::vector<double>& ipc);
  [[nodiscard]] std::size_t backlog_unlocked() const {
    return queue_.size() + leased_;
  }

  const std::size_t max_pending_;
  std::unique_ptr<CampaignJournal> journal_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  std::deque<std::uint64_t> queue_;  ///< pending fps, FIFO
  std::size_t leased_ = 0;           ///< cells currently in State::kLeased
  Counters counters_;
};

}  // namespace snug::sim::service
