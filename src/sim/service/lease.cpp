#include "sim/service/lease.hpp"

#include "common/fault.hpp"

namespace snug::sim::service {

LeaseTable::LeaseTable(std::uint64_t lease_ms, std::uint32_t max_holds)
    : lease_ms_(lease_ms > 0 ? lease_ms : 1),
      max_holds_(max_holds > 0 ? max_holds : 1) {}

bool LeaseTable::acquire(std::uint64_t fp, const std::string& label,
                         unsigned worker, std::uint64_t now_ms) {
  // Consult the fault plan outside the lock: stall@lease sleeps here.
  const bool denied = fault::maybe_deny_lease(label);
  const std::lock_guard<std::mutex> lock(mu_);
  if (live_.count(fp) != 0) return false;
  if (denied) {
    ++counters_.denied;
    return false;
  }
  live_[fp] = Lease{worker, label, now_ms, now_ms};
  ++holds_[fp];
  ++counters_.granted;
  return true;
}

bool LeaseTable::heartbeat(std::uint64_t fp, unsigned worker,
                           std::uint64_t now_ms) {
  std::string label;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(fp);
    if (it == live_.end() || it->second.worker != worker) return false;
    label = it->second.label;
  }
  if (fault::maybe_drop_heartbeat(label)) {
    // Lost on the wire: report success to the worker, renew nothing.
    return true;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(fp);
  if (it == live_.end() || it->second.worker != worker) return false;
  it->second.renewed_ms = now_ms;
  ++counters_.renewed;
  return true;
}

void LeaseTable::release(std::uint64_t fp, unsigned worker) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(fp);
  if (it != live_.end() && it->second.worker == worker) live_.erase(it);
}

std::vector<LeaseTable::Expiry> LeaseTable::scan(std::uint64_t now_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Expiry> out;
  for (auto it = live_.begin(); it != live_.end();) {
    const Lease& lease = it->second;
    if (now_ms - lease.renewed_ms < lease_ms_) {
      ++it;
      continue;
    }
    Expiry e;
    e.fp = it->first;
    e.label = lease.label;
    e.worker = lease.worker;
    e.holds = holds_[it->first];
    e.held_ms = now_ms - lease.acquired_ms;
    e.poisoned = e.holds >= max_holds_;
    ++counters_.expired;
    if (e.poisoned) ++counters_.poisoned;
    out.push_back(std::move(e));
    it = live_.erase(it);
  }
  return out;
}

std::size_t LeaseTable::live() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

LeaseTable::Counters LeaseTable::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace snug::sim::service
