// Lease-based worker supervision for the campaign service (ISSUE 9).
//
// PR 8's watchdog can only FLAG a wedged worker — fine for a one-shot
// campaign, fatal for a long-lived service where one stuck cell would
// pin a backlog entry forever.  The service upgrades supervision to
// leases: a worker must ACQUIRE a lease on a task before running it and
// HEARTBEAT while it runs; the supervisor SCANs for leases whose last
// renewal is older than the lease interval and hands the task back to
// the backlog (deterministic reassignment through the engine's existing
// retry/backoff machinery).  A task whose lease has been granted
// max_holds times is POISONED instead of reassigned — the quarantine
// that caps a crash/reassign/crash loop, turning "this cell wedges
// every worker that touches it" into an explicit error answer rather
// than an infinite loop.
//
// Time is injected (every call takes now_ms) so expiry tests are exact,
// and the grant/renewal paths consult fault::maybe_deny_lease /
// maybe_drop_heartbeat — the fail@lease and fail@heartbeat clauses of
// the fault grammar — so lost-heartbeat partitions are driven
// deterministically, never by actually wedging a thread.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace snug::sim::service {

/// Tracks live leases keyed by run fingerprint.  Thread-safe; the
/// supervisor and every worker share one table.
class LeaseTable {
 public:
  /// `lease_ms`: a lease not renewed for this long is expired by
  /// scan().  `max_holds`: total grants (across workers) after which a
  /// task is reported poisoned instead of reassignable.
  explicit LeaseTable(std::uint64_t lease_ms, std::uint32_t max_holds = 3);

  /// One expired lease, as reported by scan().
  struct Expiry {
    std::uint64_t fp = 0;
    std::string label;
    unsigned worker = 0;
    std::uint32_t holds = 0;    ///< lifetime grants of this fp so far
    std::uint64_t held_ms = 0;  ///< now - acquired_ms
    bool poisoned = false;      ///< holds reached max_holds — quarantine
  };

  struct Counters {
    std::uint64_t granted = 0;
    std::uint64_t denied = 0;  ///< fail@lease injections
    std::uint64_t renewed = 0;
    std::uint64_t expired = 0;
    std::uint64_t poisoned = 0;
  };

  /// Grants a lease on `fp` to `worker`.  False when the fp already has
  /// a live lease, or when the installed fault plan denies the grant
  /// (fail@lease) — in both cases the caller requeues the task.
  [[nodiscard]] bool acquire(std::uint64_t fp, const std::string& label,
                             unsigned worker, std::uint64_t now_ms);

  /// Renews `worker`'s lease on `fp`.  False when no such live lease
  /// exists (it expired and was reassigned — the worker should abandon
  /// the task).  NOTE: a fail@heartbeat injection returns TRUE without
  /// renewing — the worker believes the heartbeat landed, the
  /// supervisor sees the lease age out.  That asymmetry is the fault
  /// being modelled.
  [[nodiscard]] bool heartbeat(std::uint64_t fp, unsigned worker,
                               std::uint64_t now_ms);

  /// Releases `worker`'s lease on `fp` (task finished or failed
  /// terminally).  No-op if the lease already expired.
  void release(std::uint64_t fp, unsigned worker);

  /// Expires every lease whose last renewal is >= lease_ms old,
  /// removing them from the table and reporting each (in fingerprint
  /// order — deterministic for a given set of expired leases).
  [[nodiscard]] std::vector<Expiry> scan(std::uint64_t now_ms);

  [[nodiscard]] std::size_t live() const;
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::uint64_t lease_ms() const noexcept { return lease_ms_; }

 private:
  struct Lease {
    unsigned worker = 0;
    std::string label;
    std::uint64_t acquired_ms = 0;
    std::uint64_t renewed_ms = 0;
  };

  const std::uint64_t lease_ms_;
  const std::uint32_t max_holds_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Lease> live_;         ///< fp -> live lease
  std::map<std::uint64_t, std::uint32_t> holds_;  ///< fp -> lifetime grants
  Counters counters_;
};

}  // namespace snug::sim::service
