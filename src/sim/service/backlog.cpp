#include "sim/service/backlog.hpp"

#include "common/rng.hpp"
#include "sim/journal.hpp"

namespace snug::sim::service {
namespace {

/// The service journal's identity is constant — the backlog's cell set
/// grows as queries arrive, so unlike a campaign the grid cannot be
/// part of the key.  Record safety is unaffected: every frame is keyed
/// by a run_fingerprint covering machine, scale, workload and scheme.
std::uint64_t service_journal_fingerprint() {
  return Rng::derive_seed("campaignd-backlog", 0,
                          CampaignJournal::kVersion);
}

}  // namespace

BacklogScheduler::BacklogScheduler(std::size_t max_pending,
                                   const std::string& journal_path)
    : max_pending_(max_pending),
      journal_(std::make_unique<CampaignJournal>(
          journal_path, service_journal_fingerprint())) {}

BacklogScheduler::~BacklogScheduler() = default;

bool BacklogScheduler::admit(const std::vector<BacklogCell>& cells,
                             std::vector<std::uint64_t>* newly_pending) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Pass 1: resolve journal hits and count the genuinely fresh cells.
  // Journal completions are recorded even if the query is then shed —
  // the work is already done and durable; remembering it is free.
  std::vector<const BacklogCell*> fresh;
  for (const BacklogCell& cell : cells) {
    const auto it = entries_.find(cell.fp);
    if (it != entries_.end()) {
      ++counters_.deduplicated;
      continue;
    }
    std::vector<double> ipc;
    if (journal_->lookup(cell.fp, ipc)) {
      Entry& e = entries_[cell.fp];
      e.state = State::kDone;
      e.cell = cell;
      e.ipc = std::move(ipc);
      ++counters_.journal_hits;
      continue;
    }
    fresh.push_back(&cell);
  }
  if (max_pending_ > 0 &&
      backlog_unlocked() + fresh.size() > max_pending_) {
    ++counters_.shed;
    return false;  // nothing enqueued — the query keeps no partial state
  }
  for (const BacklogCell* cell : fresh) {
    Entry& e = entries_[cell->fp];
    e.state = State::kPending;
    e.cell = *cell;
    queue_.push_back(cell->fp);
    ++counters_.admitted;
    if (newly_pending != nullptr) newly_pending->push_back(cell->fp);
  }
  return true;
}

void BacklogScheduler::inject_done(const BacklogCell& cell,
                                   const std::vector<double>& ipc) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(cell.fp) != 0) return;
  Entry& e = entries_[cell.fp];
  e.state = State::kDone;
  e.cell = cell;
  e.ipc = ipc;
  journal_append_locked(cell.fp, ipc);
}

bool BacklogScheduler::next_pending(BacklogCell& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  const std::uint64_t fp = queue_.front();
  queue_.pop_front();
  Entry& e = entries_.at(fp);
  e.state = State::kLeased;
  ++leased_;
  out = e.cell;
  return true;
}

void BacklogScheduler::requeue(std::uint64_t fp) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fp);
  if (it == entries_.end() || it->second.state != State::kLeased) return;
  it->second.state = State::kPending;
  --leased_;
  queue_.push_back(fp);
  ++counters_.requeued;
}

bool BacklogScheduler::complete(std::uint64_t fp,
                                const std::vector<double>& ipc) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.state == State::kDone || e.state == State::kPoisoned) {
    // A reassigned straggler finished after its replacement: ignore it
    // so a cell can never be answered twice with different provenance.
    ++counters_.duplicate_completions;
    return false;
  }
  if (e.state == State::kLeased) {
    --leased_;
  } else {
    // Completed without a pop (shouldn't happen, but keep the queue
    // consistent if it does).
    for (auto q = queue_.begin(); q != queue_.end(); ++q) {
      if (*q == fp) {
        queue_.erase(q);
        break;
      }
    }
  }
  e.state = State::kDone;
  e.ipc = ipc;
  journal_append_locked(fp, ipc);
  ++counters_.completed;
  return true;
}

void BacklogScheduler::poison(std::uint64_t fp, const std::string& error) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.state == State::kDone || e.state == State::kPoisoned) return;
  if (e.state == State::kLeased) {
    --leased_;
  } else {
    for (auto q = queue_.begin(); q != queue_.end(); ++q) {
      if (*q == fp) {
        queue_.erase(q);
        break;
      }
    }
  }
  e.state = State::kPoisoned;
  e.error = error;
  ++counters_.poisoned;
}

BacklogScheduler::State BacklogScheduler::state(std::uint64_t fp) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fp);
  return it == entries_.end() ? State::kUnknown : it->second.state;
}

bool BacklogScheduler::result(std::uint64_t fp,
                              std::vector<double>& ipc) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fp);
  if (it == entries_.end() || it->second.state != State::kDone) {
    return false;
  }
  ipc = it->second.ipc;
  return true;
}

std::string BacklogScheduler::poison_error(std::uint64_t fp) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fp);
  if (it == entries_.end() || it->second.state != State::kPoisoned) {
    return "";
  }
  return it->second.error;
}

std::size_t BacklogScheduler::backlog() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return backlog_unlocked();
}

std::size_t BacklogScheduler::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

BacklogScheduler::Counters BacklogScheduler::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::uint64_t BacklogScheduler::journal_stale_reaped() const {
  return journal_->stale_reaped();
}
std::uint64_t BacklogScheduler::journal_discarded_bytes() const {
  return journal_->discarded_tail_bytes();
}
std::uint64_t BacklogScheduler::journal_append_failures() const {
  return journal_->append_failures();
}
std::size_t BacklogScheduler::journal_replayed() const {
  return journal_->replayed_cells();
}

void BacklogScheduler::journal_append_locked(
    std::uint64_t fp, const std::vector<double>& ipc) {
  if (journal_->enabled()) journal_->append(fp, ipc);
}

}  // namespace snug::sim::service
