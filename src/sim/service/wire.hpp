// Wire protocol of the campaign service (ISSUE 9) — the file-based
// submit/complete queue between clients and `campaignd`.
//
// A query is one file in `<root>/submit/<id>.query`; the matching
// answer appears at `<root>/answers/<id>.answer`.  Both sides publish
// atomically (unique temp + rename, the same discipline as the stores),
// so a reader can never observe a half-written message, and both sides
// go through the fault::Env seam so torn submissions and answer-publish
// failures are exercised deterministically in tests.
//
// Query format (line-oriented key=value; the ScenarioSpec grammar is
// the scenario payload — it already round-trips as text):
//   query-v1
//   id=<client-chosen id, [A-Za-z0-9._-]+>
//   scenario=<ScenarioSpec key=value line, e.g. "cores=4 workload=paper">
//   scheme=<SchemeSpec id, e.g. "SNUG" or "CC(50%)">
//
// Answer format:
//   answer-v1
//   id=<query id>
//   status=ok | error | retry-after
//   error=<one-line diagnostic>            (status=error only)
//   retry-after-ms=<n>                     (status=retry-after only)
//   cell=<combo name> ipc=<v>,<v>,...      (one line per workload combo)
// IPC values are printed with %.17g, which round-trips an IEEE double
// exactly — a resumed server's answers can be byte-compared ("diff")
// against an uninterrupted run's.
//
// Batched sweep queries (ISSUE 10): a figure-style sweep used to cost
// one wire round-trip per (scenario, scheme) point — 21 messages for a
// fig9 column.  `query-v2` carries N scenario x scheme items in ONE
// message and `answer-v2` answers them with PER-PART status, so
// admission control can shed one overloaded part (whole-part, never a
// partial cell list) while the rest of the batch proceeds:
//
//   query-v2
//   id=<client-chosen id>
//   query=<scheme id>|<ScenarioSpec line>   (one line per part, >= 1;
//                                            '|' cannot appear in either)
//
//   answer-v2
//   id=<query id>
//   parts=<N>
//   part=<i> status=ok | error error=<msg> | retry-after retry-after-ms=<n>
//   cell=<i>/<combo name> ipc=<v>,<v>,...   (ok parts only, combo order)
//
// Part lines appear in index order 0..N-1, exactly once each; cell
// lines follow, grouped by part.  A v1 client is untouched: `query-v1`
// files still answer `answer-v1` byte-identically (the compat pin in
// tests/sim/service_wire_test.cpp).
//
// Crash contract: the submit file is the durable record of an accepted
// query — the server removes it only AFTER the answer is published, so
// a server killed at any point re-ingests the query on restart and the
// client's poll loop never hangs on a lost query.  Re-publishing an
// identical answer is idempotent.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"

namespace snug::sim::service {

/// Client-visible status of a completed query.
enum class AnswerStatus : std::uint8_t {
  kOk,
  kError,       ///< malformed query, or a cell poisoned past recovery
  kRetryAfter,  ///< backlog full — resubmit after retry_after_ms
};

struct ServiceQuery {
  std::string id;
  std::string scenario_text;  ///< ScenarioSpec grammar (sim/scenario.hpp)
  std::string scheme_id;      ///< SchemeSpec::id() grammar
};

struct AnswerCell {
  std::string combo;        ///< workload combo name
  std::vector<double> ipc;  ///< per-core measured IPC
};

struct ServiceAnswer {
  std::string id;
  AnswerStatus status = AnswerStatus::kOk;
  std::string error;                 ///< status=error diagnostic
  std::uint64_t retry_after_ms = 0;  ///< status=retry-after backoff hint
  std::vector<AnswerCell> cells;     ///< query's combos, in combo order
};

/// One scenario x scheme item of a v2 batch query.
struct BatchItem {
  std::string scenario_text;
  std::string scheme_id;
};

/// Hard cap on items per batch — a figure sweep is ~21; anything past
/// this is a malformed (or hostile) message, rejected at parse.
inline constexpr std::size_t kMaxBatchItems = 1024;

struct ServiceBatchQuery {
  std::string id;
  std::vector<BatchItem> items;
};

/// Per-part result of a batch: one item's whole answer.  Shed and error
/// verdicts are part-granular — a part never carries a partial cell
/// list.
struct BatchPart {
  AnswerStatus status = AnswerStatus::kOk;
  std::string error;                 ///< status=error diagnostic
  std::uint64_t retry_after_ms = 0;  ///< status=retry-after backoff hint
  std::vector<AnswerCell> cells;     ///< item's combos, in combo order
};

struct ServiceBatchAnswer {
  std::string id;
  std::vector<BatchPart> parts;  ///< one per query item, in item order
};

/// Query ids become file names: one path component, no separators or
/// shell surprises — [A-Za-z0-9._-]+, at most 128 chars.
[[nodiscard]] bool valid_query_id(const std::string& id);

[[nodiscard]] std::string submit_dir(const std::string& root);
[[nodiscard]] std::string answer_dir(const std::string& root);
[[nodiscard]] std::string query_path(const std::string& root,
                                     const std::string& id);
[[nodiscard]] std::string answer_path(const std::string& root,
                                      const std::string& id);

[[nodiscard]] std::string encode_query(const ServiceQuery& query);
/// False (with a one-line diagnostic) on any malformed line, a bad id,
/// or a missing field; `out` is untouched on failure.
[[nodiscard]] bool parse_query(const std::string& text, ServiceQuery& out,
                               std::string& error);

[[nodiscard]] std::string encode_answer(const ServiceAnswer& answer);
[[nodiscard]] bool parse_answer(const std::string& text, ServiceAnswer& out,
                                std::string& error);

/// True when `text` opens with the query-v2 magic (the server's format
/// dispatch; cheap — looks at the first line only).
[[nodiscard]] bool is_batch_query(const std::string& text);

[[nodiscard]] std::string encode_batch_query(const ServiceBatchQuery& query);
[[nodiscard]] bool parse_batch_query(const std::string& text,
                                     ServiceBatchQuery& out,
                                     std::string& error);

[[nodiscard]] std::string encode_batch_answer(
    const ServiceBatchAnswer& answer);
[[nodiscard]] bool parse_batch_answer(const std::string& text,
                                      ServiceBatchAnswer& out,
                                      std::string& error);

/// Verified atomic publish: writes `text` to `tmp`, reads it back, and
/// only renames onto `final_path` when the bytes on disk are exactly
/// the bytes intended.  A write that silently tears (a full disk
/// swallowing the tail, the short-write fault) is caught here instead
/// of being renamed into a permanently corrupt wire file; the temp is
/// removed and the caller retries later.  False on any step failing.
[[nodiscard]] bool publish_verified(const fault::Env& env,
                                    const std::string& tmp,
                                    const std::string& final_path,
                                    const std::string& text);

/// Client side of the queue: submits query files and polls for answers.
/// Stateless apart from a temp-name sequence; one client may be shared
/// by threads, and any number of client processes may point at one
/// service root.
class ServiceClient {
 public:
  explicit ServiceClient(std::string root);

  /// Atomically publishes the query file.  False (diagnosing into
  /// `error` when given) on a bad id or an I/O failure.
  bool submit(const ServiceQuery& query, std::string* error = nullptr) const;

  /// True when the answer for `id` has been published (and parses);
  /// false while still pending.  A published-but-unparseable answer
  /// reports status=error with the parse diagnostic, so a client never
  /// spins forever on a mangled file.
  bool try_poll(const std::string& id, ServiceAnswer& out) const;

  /// Polls every poll_ms until the answer lands or timeout_ms passes.
  bool wait(const std::string& id, ServiceAnswer& out,
            std::uint64_t timeout_ms, std::uint64_t poll_ms = 2) const;

  /// Atomically publishes a batch (query-v2) file.  Same contract as
  /// submit(): false on a bad id, an empty/oversized batch, or I/O
  /// failure.
  bool submit_batch(const ServiceBatchQuery& query,
                    std::string* error = nullptr) const;

  /// Batch counterpart of try_poll.  A published answer that parses as
  /// neither answer-v2 nor answer-v1 (or a v1 error the server used to
  /// reject a malformed batch wholesale) surfaces as a single
  /// status=error part, so a batch client never spins on a mangled or
  /// downgraded file.
  bool try_poll_batch(const std::string& id, ServiceBatchAnswer& out) const;

  bool wait_batch(const std::string& id, ServiceBatchAnswer& out,
                  std::uint64_t timeout_ms, std::uint64_t poll_ms = 2) const;

 private:
  const fault::Env* env_;  ///< resolved at construction (fault seam)
  std::string root_;
  mutable std::atomic<std::uint64_t> seq_{0};  ///< unique temp names
};

}  // namespace snug::sim::service
