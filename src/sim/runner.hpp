// ExperimentRunner — executes (workload combo x scheme) timing runs and
// caches per-core IPCs on disk, so the three figure benches (9, 10, 11)
// share one simulation campaign instead of repeating it.
//
// The runner is concurrency-safe: any number of threads may call run()
// on the same instance (the campaign executor in sim/executor.hpp does
// exactly that), and concurrent processes may share one cache directory —
// stores are atomic temp-file-then-rename, loads validate a versioned
// binary header and reject anything truncated or stale.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/fsepoch.hpp"
#include "sim/config.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "sim/warm_state.hpp"

namespace snug::sim {

struct RunResult {
  std::vector<double> ipc;  ///< per core, measurement window
  bool cached = false;      ///< true when served from the eval cache
  /// True when the warm-up phase was restored from the warm-state bank
  /// instead of simulated (functional mode only; always false when the
  /// whole result came from the eval cache).
  bool warm_banked = false;
  /// True when the result was replayed from a campaign journal
  /// (sim/journal.hpp) rather than simulated or cache-loaded this run.
  bool replayed = false;

  [[nodiscard]] double throughput() const;
};

/// One-file-per-entry disk cache keyed by a fingerprint of
/// (combo, scheme, config, scale).
///
/// Entry format (host-endian, `<key>.snugc`; the magic word doubles as
/// an endianness check):
///   u32 magic 'SNUG'   u32 format version   u64 key fingerprint
///   u32 ipc count      u32 payload CRC-32C  f64 x count payload
/// A load succeeds only when magic, version, fingerprint, exact size and
/// payload CRC all check out — short reads, torn writes, bit rot and
/// version bumps all fall through to a fresh simulation.  Rejections are
/// classified: *stale* entries (wrong version or fingerprint — valid
/// files that simply answer a different question) stay in place, while
/// *structurally corrupt* files (bad magic, truncation, trailing bytes,
/// CRC mismatch, implausible count) are quarantined — renamed into
/// `<dir>/quarantine/`, never deleted — so they stop shadowing fresh
/// stores but remain inspectable.  Stores write a uniquely named temp
/// file and rename() it into place, so a concurrent reader can never
/// observe a half-written entry; opening a cache reaps temp files whose
/// writer process is dead (see sim/store_recovery.hpp).  All I/O goes
/// through the fault::Env seam, so every one of these failure paths is
/// exercised deterministically by tests/sim/fault_injection_test.cpp.
class EvalCache {
 public:
  static constexpr std::uint32_t kMagic = 0x47554E53;  // "SNUG"
  /// v2: the scenario layer — run fingerprints now cover the full
  /// topology (L1I/shared-L2 geometry, core pipeline, WBB, latency and
  /// ablation knobs) and generated-mix parameters.  Pre-scenario v1
  /// entries fingerprinted only a quad-core-era subset, so they are
  /// rejected wholesale by the version check.
  /// v3: the alias-method Zipf sampler consumes RNG draws differently
  /// than the CDF sampler, so every simulated IPC legitimately changed
  /// (statistically equivalent, bit-level different); v2 entries would
  /// silently resurrect pre-alias results and are rejected wholesale.
  /// v4: the reserved header word became the payload CRC-32C.  A v3
  /// entry with a non-empty payload would always fail the CRC check and
  /// land in quarantine even though it is merely stale, so v3 is
  /// rejected by version (and left in place) instead.
  static constexpr std::uint32_t kVersion = 4;
  /// Hard upper bound on plausible per-core entries; anything larger is
  /// treated as corruption.
  static constexpr std::uint32_t kMaxEntries = 4096;

  /// Recovery actions taken by this instance (see the class comment).
  struct Recovery {
    std::uint64_t reaped_temps = 0;  ///< dead writers' temps removed on open
    std::uint64_t quarantined = 0;   ///< corrupt entries renamed aside
    /// Oldest quarantine/ entries removed at open to stay within the
    /// kQuarantineCap bound (sim/store_recovery.hpp).
    std::uint64_t quarantine_trimmed = 0;
  };

  /// `dir` is created on demand; pass "" to disable caching.  Opening
  /// runs the orphaned-temp reap.
  explicit EvalCache(std::string dir);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  [[nodiscard]] bool load(const std::string& key, std::uint64_t fingerprint,
                          std::vector<double>& ipc) const;
  void store(const std::string& key, std::uint64_t fingerprint,
             const std::vector<double>& ipc) const;
  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }

  /// Header-validated probe: true when a well-formed entry for this
  /// (key, fingerprint) is currently published.  No CRC verdict and no
  /// quarantine (a later load makes the structural call), mirroring
  /// WarmStateBank::contains — cheap enough for a service admission
  /// path.
  [[nodiscard]] bool contains(const std::string& key,
                              std::uint64_t fingerprint) const;

  /// Counts entries published in the directory, picking up entries from
  /// OTHER processes since this instance opened (multi-process
  /// read-sharing: the writer's atomic temp-then-rename publish means a
  /// re-scan can never observe a half-written entry).  Loads always go
  /// to disk, so refresh() is not required for correctness — it exists
  /// so a long-lived server can report (and tests can pin) how many
  /// entries are visible.  Returns the number of published entries now
  /// in the directory.
  ///
  /// The directory is only LISTED when its stat epoch (mtime_ns, size)
  /// moved since the last refresh — every publish is a rename into the
  /// directory, which perturbs the epoch — so a server polling refresh()
  /// pays one metadata syscall per call, not a scan (ISSUE 10).  The
  /// stat is deliberately outside the fault::Env seam: the epoch is a
  /// pure memoisation key, never a durability decision.
  std::size_t refresh() const;

  [[nodiscard]] Recovery recovery() const noexcept {
    return {reaped_temps_.load(std::memory_order_relaxed),
            quarantined_.load(std::memory_order_relaxed),
            quarantine_trimmed_.load(std::memory_order_relaxed)};
  }

 private:
  [[nodiscard]] std::string entry_path(const std::string& key) const;

  const fault::Env* env_;  ///< resolved at construction (fault seam)
  std::string dir_;
  mutable std::atomic<std::uint64_t> store_seq_{0};  ///< unique temp names
  std::atomic<std::uint64_t> reaped_temps_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> quarantine_trimmed_{0};

  /// refresh() memo: the directory's settled epoch at the last listing
  /// (common/fsepoch.hpp) plus the count it produced.
  mutable std::mutex refresh_mu_;
  mutable DirEpoch refresh_epoch_;
  mutable std::size_t refresh_count_ = 0;
  mutable bool refresh_primed_ = false;
};

/// Default cache directory: $SNUG_CACHE_DIR or .snug_eval_cache under the
/// current working directory.
[[nodiscard]] std::string default_cache_dir();

/// Fingerprint of one cache entry: covers the system config, run scale,
/// workload combo (name and per-core benchmarks) and scheme spec.  Stable
/// across runs and processes; changes whenever any input that affects the
/// simulated IPCs changes.
[[nodiscard]] std::uint64_t run_fingerprint(const SystemConfig& cfg,
                                            const RunScale& scale,
                                            const trace::WorkloadCombo& combo,
                                            const schemes::SchemeSpec& spec);

class ExperimentRunner {
 public:
  ExperimentRunner(const SystemConfig& cfg, const RunScale& scale,
                   std::string cache_dir = default_cache_dir(),
                   std::string warm_bank_dir = default_warm_bank_dir());

  /// Builds the runner's machine and scale from a scenario spec; aborts
  /// with the spec's validate() message on an unbuildable scenario.
  explicit ExperimentRunner(const ScenarioSpec& scenario,
                            std::string cache_dir = default_cache_dir(),
                            std::string warm_bank_dir =
                                default_warm_bank_dir());

  /// Runs (or loads) one combo under one scheme.  Safe to call from many
  /// threads concurrently; each call simulates on its own CmpSystem.
  RunResult run(const trace::WorkloadCombo& combo,
                const schemes::SchemeSpec& spec);

  /// One lane-group point: a (combo, scheme) task.
  struct GroupPoint {
    trace::WorkloadCombo combo;
    schemes::SchemeSpec spec;
  };

  /// Runs several points as one lane group (sim/lane_engine.hpp):
  /// cache-resident points are served immediately, the remaining points
  /// are built as independent lanes of one LaneGroup and advanced in
  /// lockstep through the masked stepping path.  Results — IPC vectors,
  /// cache entries, warm-bank traffic — are bit-identical to calling
  /// run() per point (lane equivalence is pinned per scheme by
  /// tests/sim/lane_equivalence_test.cpp); only host throughput
  /// differs.  Thread-safe like run().
  std::vector<RunResult> run_group(const std::vector<GroupPoint>& points);

  /// Re-publishes a known-good result into the eval cache — the exact
  /// store run() would have performed.  Used by campaign journal replay
  /// (sim/journal.hpp) so a resumed campaign reproduces the
  /// uninterrupted run's cache contents even for cells it never
  /// re-simulated.
  void seed_cache(const trace::WorkloadCombo& combo,
                  const schemes::SchemeSpec& spec,
                  const std::vector<double>& ipc);

  /// Direct cache probe: loads this task's published IPCs without
  /// simulating on a miss (and without firing on_progress).  The
  /// campaign service's hit path — a cache-resident query is answered
  /// from here in microseconds; only misses enter the backlog.
  [[nodiscard]] bool cached_ipc(const trace::WorkloadCombo& combo,
                                const schemes::SchemeSpec& spec,
                                std::vector<double>& ipc) const;

  /// Results for one combo under every scheme of the paper grid, keyed by
  /// scheme id ("L2P", "L2S", "CC(25%)", ..., "DSR", "SNUG").
  using ComboResults = std::map<std::string, RunResult>;
  ComboResults run_combo_grid(const trace::WorkloadCombo& combo);

  /// Optional progress callback: (combo, scheme, cached).  Invocations are
  /// serialised under an internal mutex, so the callback itself does not
  /// need to be thread-safe even when run() is called concurrently.
  std::function<void(const std::string&, const std::string&, bool)>
      on_progress;

  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const RunScale& scale() const noexcept { return scale_; }

  /// Recovery counters of the two stores, for bench summary lines.
  [[nodiscard]] EvalCache::Recovery cache_recovery() const noexcept {
    return cache_.recovery();
  }
  /// The runner's eval cache (read-side service probes: refresh(),
  /// contains()).
  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }
  [[nodiscard]] WarmStateBank::Recovery warm_recovery() const noexcept {
    return warm_bank_.recovery();
  }

  /// Cache-entry basename for one task (combo, scheme id, fingerprint);
  /// exposed for fingerprint-stability tests and cache tooling.
  [[nodiscard]] std::string cache_key(const trace::WorkloadCombo& combo,
                                      const schemes::SchemeSpec& spec) const;

  /// Warm-state-bank entry basename for one task's warm-up prefix
  /// (functional mode; see sim/warm_state.hpp).
  [[nodiscard]] std::string warm_key(const trace::WorkloadCombo& combo,
                                     const schemes::SchemeSpec& spec) const;

  /// True when the warm-state bank already holds this task's warm-up
  /// prefix (header-validated probe) — the --dry-run hit/miss
  /// prediction.  Always false outside functional mode.
  [[nodiscard]] bool warm_state_banked(
      const trace::WorkloadCombo& combo,
      const schemes::SchemeSpec& spec) const;

 private:
  [[nodiscard]] std::string cache_key(const trace::WorkloadCombo& combo,
                                      const schemes::SchemeSpec& spec,
                                      std::uint64_t fingerprint) const;
  [[nodiscard]] std::string warm_key(const trace::WorkloadCombo& combo,
                                     const schemes::SchemeSpec& spec,
                                     std::uint64_t fingerprint) const;
  SystemConfig cfg_;
  RunScale scale_;
  EvalCache cache_;
  /// Fingerprint-keyed warm-state store, active only under
  /// warmup-mode=functional (constructed disabled otherwise so timing
  /// runs never touch the bank directory).
  WarmStateBank warm_bank_;
  std::mutex progress_mu_;
};

}  // namespace snug::sim
