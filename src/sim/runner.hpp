// ExperimentRunner — executes (workload combo x scheme) timing runs and
// caches per-core IPCs on disk, so the three figure benches (9, 10, 11)
// share one simulation campaign instead of repeating it.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/system.hpp"

namespace snug::sim {

struct RunResult {
  std::vector<double> ipc;  ///< per core, measurement window

  [[nodiscard]] double throughput() const;
};

/// One-file-per-entry disk cache keyed by a fingerprint of
/// (combo, scheme, config, scale).
class EvalCache {
 public:
  /// `dir` is created on demand; pass "" to disable caching.
  explicit EvalCache(std::string dir);

  [[nodiscard]] bool load(const std::string& key,
                          std::vector<double>& ipc) const;
  void store(const std::string& key, const std::vector<double>& ipc) const;
  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }

 private:
  std::string dir_;
};

/// Default cache directory: $SNUG_CACHE_DIR or .snug_eval_cache under the
/// current working directory.
[[nodiscard]] std::string default_cache_dir();

class ExperimentRunner {
 public:
  ExperimentRunner(const SystemConfig& cfg, const RunScale& scale,
                   std::string cache_dir = default_cache_dir());

  /// Runs (or loads) one combo under one scheme.
  RunResult run(const trace::WorkloadCombo& combo,
                const schemes::SchemeSpec& spec);

  /// Results for one combo under every scheme of the paper grid, keyed by
  /// scheme id ("L2P", "L2S", "CC(25%)", ..., "DSR", "SNUG").
  using ComboResults = std::map<std::string, RunResult>;
  ComboResults run_combo_grid(const trace::WorkloadCombo& combo);

  /// Optional progress callback: (combo, scheme, cached).
  std::function<void(const std::string&, const std::string&, bool)>
      on_progress;

  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const RunScale& scale() const noexcept { return scale_; }

 private:
  [[nodiscard]] std::string cache_key(const trace::WorkloadCombo& combo,
                                      const schemes::SchemeSpec& spec) const;

  SystemConfig cfg_;
  RunScale scale_;
  EvalCache cache_;
};

}  // namespace snug::sim
