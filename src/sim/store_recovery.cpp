#include "sim/store_recovery.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/str.hpp"

namespace snug::sim {
namespace {

/// True when a process with this pid still exists (EPERM counts: the
/// process is alive, we just may not signal it).
bool pid_alive(long pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;
}

/// Extracts the writer pid from `<key>.tmp.<pid>.<seq>`; false when the
/// name does not parse (treated as reapable garbage by the caller).
bool parse_temp_pid(const std::string& name, long& pid) {
  const std::size_t tmp = name.find(".tmp.");
  if (tmp == std::string::npos) return false;
  const std::size_t pid_begin = tmp + 5;
  const std::size_t pid_end = name.find('.', pid_begin);
  if (pid_end == std::string::npos || pid_end == pid_begin) return false;
  char* end = nullptr;
  const std::string pid_str = name.substr(pid_begin, pid_end - pid_begin);
  pid = std::strtol(pid_str.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::uint64_t reap_orphaned_temps(const fault::Env& env,
                                  const std::string& dir) {
  std::uint64_t reaped = 0;
  for (const std::string& name : env.list_dir(dir)) {
    if (name.find(".tmp.") == std::string::npos) continue;
    long pid = 0;
    if (parse_temp_pid(name, pid) && pid_alive(pid)) continue;
    env.remove(dir + "/" + name);
    ++reaped;
  }
  return reaped;
}

bool quarantine_entry(const fault::Env& env, const std::string& dir,
                      const std::string& name, std::uint64_t uniq) {
  const std::string qdir = dir + "/quarantine";
  if (!env.create_directories(qdir)) return false;
  const std::string qpath =
      strf("%s/%s.%ld.%llu", qdir.c_str(), name.c_str(),
           static_cast<long>(::getpid()),
           static_cast<unsigned long long>(uniq));
  return env.rename(dir + "/" + name, qpath);
}

std::uint64_t bound_quarantine(const fault::Env& env, const std::string& dir,
                               std::size_t max_keep) {
  const std::string qdir = dir + "/quarantine";
  const std::vector<std::string> names = env.list_dir(qdir);  // sorted
  if (names.size() <= max_keep) return 0;
  const std::uint64_t surplus = names.size() - max_keep;
  for (std::uint64_t i = 0; i < surplus; ++i) {
    env.remove(qdir + "/" + names[i]);
  }
  std::fprintf(stderr,
               "snug: quarantine bound: removed %llu oldest of %zu "
               "entries in %s (cap %zu)\n",
               static_cast<unsigned long long>(surplus), names.size(),
               qdir.c_str(), max_keep);
  return surplus;
}

std::uint64_t reap_stale_journals(const fault::Env& env,
                                  const std::string& journal_path) {
  const std::size_t slash = journal_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : journal_path.substr(0, slash);
  const std::string base = slash == std::string::npos
                               ? journal_path
                               : journal_path.substr(slash + 1);
  const std::string prefix = base + ".stale.";
  std::uint64_t reaped = 0;
  for (const std::string& name : env.list_dir(dir)) {
    if (name.rfind(prefix, 0) != 0) continue;
    char* end = nullptr;
    const std::string pid_str = name.substr(prefix.size());
    const long pid = std::strtol(pid_str.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && pid_alive(pid)) continue;
    env.remove(dir + "/" + name);
    ++reaped;
  }
  return reaped;
}

}  // namespace snug::sim
