#include "sim/store_recovery.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "common/str.hpp"

namespace snug::sim {
namespace {

/// True when a process with this pid still exists (EPERM counts: the
/// process is alive, we just may not signal it).
bool pid_alive(long pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;
}

/// Extracts the writer pid from `<key>.tmp.<pid>.<seq>`; false when the
/// name does not parse (treated as reapable garbage by the caller).
bool parse_temp_pid(const std::string& name, long& pid) {
  const std::size_t tmp = name.find(".tmp.");
  if (tmp == std::string::npos) return false;
  const std::size_t pid_begin = tmp + 5;
  const std::size_t pid_end = name.find('.', pid_begin);
  if (pid_end == std::string::npos || pid_end == pid_begin) return false;
  char* end = nullptr;
  const std::string pid_str = name.substr(pid_begin, pid_end - pid_begin);
  pid = std::strtol(pid_str.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::uint64_t reap_orphaned_temps(const fault::Env& env,
                                  const std::string& dir) {
  std::uint64_t reaped = 0;
  for (const std::string& name : env.list_dir(dir)) {
    if (name.find(".tmp.") == std::string::npos) continue;
    long pid = 0;
    if (parse_temp_pid(name, pid) && pid_alive(pid)) continue;
    env.remove(dir + "/" + name);
    ++reaped;
  }
  return reaped;
}

bool quarantine_entry(const fault::Env& env, const std::string& dir,
                      const std::string& name, std::uint64_t uniq) {
  const std::string qdir = dir + "/quarantine";
  if (!env.create_directories(qdir)) return false;
  const std::string qpath =
      strf("%s/%s.%ld.%llu", qdir.c_str(), name.c_str(),
           static_cast<long>(::getpid()),
           static_cast<unsigned long long>(uniq));
  return env.rename(dir + "/" + name, qpath);
}

}  // namespace snug::sim
