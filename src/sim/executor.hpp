// ParallelExecutor — a persistent worker pool that fans independent,
// index-addressed tasks out across hardware threads.
//
// Every CmpSystem run is a deterministic, isolated simulation, so a
// campaign is embarrassingly parallel: the pool hands out task indices
// from a shared atomic counter (cheap work stealing — an idle worker
// always claims the next undone index) and callers write results into
// per-index slots.  Because slot assignment depends only on the index,
// parallel output is bit-identical to a serial run no matter how the
// schedule interleaves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace snug::sim {

/// Maps a --jobs request to a worker count: n > 0 is taken literally,
/// anything else (0 = "auto") resolves to the hardware thread count.
[[nodiscard]] unsigned resolve_jobs(std::int64_t requested) noexcept;

class ParallelExecutor {
 public:
  /// `jobs` as in resolve_jobs(); 1 means fully serial (no worker threads
  /// are created and tasks run inline on the calling thread, in order).
  explicit ParallelExecutor(unsigned jobs = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Wedged-worker watchdog deadline (0 = off).  While a pooled batch
  /// runs, a monitor thread scans the workers' in-flight tasks; one that
  /// has held the same index longer than this is FLAGGED, not killed —
  /// a diagnostic dump (worker, task index, held duration, batch
  /// progress) goes to stderr once per stuck claim, watchdog_flagged()
  /// increments, and the worker keeps running: killing a deterministic
  /// simulation mid-flight could only corrupt shared stores, while a
  /// flag lets the operator decide.  Serial mode (jobs=1) runs inline on
  /// the caller and is never watched.
  std::uint64_t watchdog_ms = 0;

  /// Stuck-task flags raised by the watchdog so far (cumulative across
  /// batches; a task re-flagged after a worker moves on counts again).
  [[nodiscard]] std::uint64_t watchdog_flagged() const noexcept {
    return watchdog_flagged_.load(std::memory_order_relaxed);
  }

  /// Optional task naming for the watchdog dump: given a batch index,
  /// returns a human label (the campaign engine supplies
  /// "combo/scheme fp=<run fingerprint>"), so a flag line identifies
  /// WHICH cell wedged, not just which worker holds it — service logs
  /// need the fingerprint to correlate with backlog/lease records.
  /// Must be safe to call from the monitor thread while the batch runs
  /// (pure function of the index).  Set before run_indexed; cleared by
  /// the caller when the labels' backing storage dies.
  std::function<std::string(std::size_t)> task_label;

  /// Runs fn(i) exactly once for every i in [0, n), possibly concurrently,
  /// and returns when all are done.  fn must confine its writes to
  /// per-index state.  The first exception thrown by fn is rethrown here
  /// (remaining unclaimed indices are abandoned).  Not reentrant: one
  /// batch runs at a time per executor.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One worker's in-flight claim, written by the worker and read by
  /// the watchdog monitor (cache-line padded: claims are per-task
  /// writes on the hot path).
  struct alignas(64) WorkerClaim {
    static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
    std::atomic<std::size_t> index{kIdle};
    std::atomic<std::uint64_t> start_ns{0};
  };

  void worker_loop(const std::stop_token& stop, unsigned wid);
  void work_off_batch(unsigned wid);
  void watchdog_scan();

  unsigned jobs_ = 1;
  std::vector<std::jthread> workers_;
  std::vector<WorkerClaim> claims_;

  std::mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;      ///< bumped once per batch
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t batch_size_ = 0;
  std::atomic<std::size_t> next_{0};  ///< next unclaimed task index
  unsigned workers_done_ = 0;         ///< workers finished with this batch
  std::exception_ptr first_error_;
  std::atomic<std::uint64_t> watchdog_flagged_{0};
  std::vector<std::uint64_t> flagged_start_;  ///< monitor-only: dedup per claim

  std::mutex batch_mu_;  ///< serialises run_indexed callers
};

}  // namespace snug::sim
