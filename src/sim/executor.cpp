#include "sim/executor.hpp"

namespace snug::sim {

unsigned resolve_jobs(std::int64_t requested) noexcept {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelExecutor::ParallelExecutor(unsigned jobs)
    : jobs_(resolve_jobs(static_cast<std::int64_t>(jobs))) {
  if (jobs_ < 2) return;  // serial mode: no pool at all
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();  // wake everyone so stop tokens are observed
  // Join here, not via ~jthread: the mutex and condition variables are
  // members too and must outlive every worker that might touch them.
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::worker_loop(const std::stop_token& stop) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, stop,
                    [&] { return generation_ != seen_generation; });
      if (stop.stop_requested()) return;
      seen_generation = generation_;
    }
    work_off_batch();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (++workers_done_ == jobs_) done_cv_.notify_all();
    }
  }
}

void ParallelExecutor::work_off_batch() {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch_size_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon the rest of the batch: claim everything that is left.
      next_.store(batch_size_, std::memory_order_relaxed);
      return;
    }
  }
}

void ParallelExecutor::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::lock_guard<std::mutex> batch_lock(batch_mu_);

  if (workers_.empty()) {
    // Serial reference path: index order, calling thread, no pool.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == jobs_; });
    fn_ = nullptr;
    batch_size_ = 0;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace snug::sim
