#include "sim/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace snug::sim {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

unsigned resolve_jobs(std::int64_t requested) noexcept {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelExecutor::ParallelExecutor(unsigned jobs)
    : jobs_(resolve_jobs(static_cast<std::int64_t>(jobs))) {
  if (jobs_ < 2) return;  // serial mode: no pool at all
  claims_ = std::vector<WorkerClaim>(jobs_);
  flagged_start_.assign(jobs_, 0);
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back(
        [this, i](const std::stop_token& stop) { worker_loop(stop, i); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();  // wake everyone so stop tokens are observed
  // Join here, not via ~jthread: the mutex and condition variables are
  // members too and must outlive every worker that might touch them.
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::worker_loop(const std::stop_token& stop,
                                   unsigned wid) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, stop,
                    [&] { return generation_ != seen_generation; });
      if (stop.stop_requested()) return;
      seen_generation = generation_;
    }
    work_off_batch(wid);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (++workers_done_ == jobs_) done_cv_.notify_all();
    }
  }
}

void ParallelExecutor::work_off_batch(unsigned wid) {
  WorkerClaim& claim = claims_[wid];
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch_size_) return;
    claim.start_ns.store(steady_now_ns(), std::memory_order_relaxed);
    claim.index.store(i, std::memory_order_release);
    try {
      (*fn_)(i);
    } catch (...) {
      claim.index.store(WorkerClaim::kIdle, std::memory_order_release);
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon the rest of the batch: claim everything that is left.
      next_.store(batch_size_, std::memory_order_relaxed);
      return;
    }
    claim.index.store(WorkerClaim::kIdle, std::memory_order_release);
  }
}

void ParallelExecutor::watchdog_scan() {
  const std::uint64_t deadline_ns = watchdog_ms * 1'000'000ULL;
  const std::uint64_t now = steady_now_ns();
  for (unsigned w = 0; w < jobs_; ++w) {
    const std::size_t i = claims_[w].index.load(std::memory_order_acquire);
    if (i == WorkerClaim::kIdle) continue;
    const std::uint64_t start =
        claims_[w].start_ns.load(std::memory_order_relaxed);
    if (now - start < deadline_ns) continue;
    if (flagged_start_[w] == start) continue;  // already dumped this claim
    flagged_start_[w] = start;
    watchdog_flagged_.fetch_add(1, std::memory_order_relaxed);
    // Flag, never kill: the dump is the diagnostic, the operator (or a
    // bench summary reading watchdog_flagged()) decides what to do.
    const std::string label =
        task_label ? task_label(i) : std::string();
    std::fprintf(stderr,
                 "snug: watchdog: worker %u has held task %zu%s%s for "
                 "%llu ms (deadline %llu ms, batch %zu/%zu claimed) — "
                 "flagging, not killing\n",
                 w, i, label.empty() ? "" : " ", label.c_str(),
                 static_cast<unsigned long long>((now - start) / 1'000'000),
                 static_cast<unsigned long long>(watchdog_ms),
                 std::min(next_.load(std::memory_order_relaxed),
                          batch_size_),
                 batch_size_);
  }
}

void ParallelExecutor::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::lock_guard<std::mutex> batch_lock(batch_mu_);

  if (workers_.empty()) {
    // Serial reference path: index order, calling thread, no pool.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  // The watchdog monitor lives exactly as long as the batch.  It only
  // reads the claim slots and writes flags/dumps, so it never perturbs
  // results — determinism is untouched whether it runs or not.
  std::jthread monitor;
  if (watchdog_ms > 0) {
    std::fill(flagged_start_.begin(), flagged_start_.end(), 0);
    monitor = std::jthread([this](const std::stop_token& stop) {
      const auto tick = std::chrono::milliseconds(
          std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                         watchdog_ms / 4, 50)));
      while (!stop.stop_requested()) {
        watchdog_scan();
        std::this_thread::sleep_for(tick);
      }
    });
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == jobs_; });
    error = first_error_;
  }
  // Stop the monitor before clearing batch state: it reads batch_size_
  // and the claim slots without the batch mutex.
  if (monitor.joinable()) {
    monitor.request_stop();
    monitor.join();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = nullptr;
    batch_size_ = 0;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace snug::sim
