// Lane-parallel execution engine: steps W replicas of near-identical
// campaign points ("lanes") through the free-running core path inside
// one campaign worker.
//
// Why lanes help at all: the post-PR 5/6 profile says the scalar run
// tier is bounded by per-cycle driver overhead — `CmpSystem::run`
// sweeps every core every event cycle, and `Core::step` pays a call
// round-trip per simulated cycle.  A lane group attacks this two ways:
//   * every lane steps through cpu::Core::step_masked, which free-runs
//     each core through its core-local work (plain instructions, L1
//     hits, retirement) in one call and parks only at shared-state
//     events — measured ~9x fewer core-step calls per simulated window;
//   * lanes advance in round-robin *quanta* (kQuantum cycles each), so
//     the host branch predictor and caches see a long homogeneous burst
//     per lane instead of a per-event interleave thrashing both.
//
// Lanes are fully independent machines — same scenario, different seed
// or rotated workload variant — so bit-identity with the scalar engine
// is structural, not statistical: CmpSystem::run is resumable
// (run(a); run(b) == run(a+b), the event-at-window-end deferral
// contract documented in system.cpp), step_masked parks shared-state
// events back onto their exact (cycle, core) sweep slot, and no state
// is shared between lanes.  Lane 0 of a W-wide group therefore produces
// bit-identical results to a scalar run of the same point — pinned per
// scheme by tests/sim/lane_equivalence_test.cpp.
//
// Shared-state events (scheme/bus/DRAM accesses, epoch ticks, WBB
// drains) stay on the driver's global timeline: step_masked parks at
// them, and the system-level event loop is unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/system.hpp"

namespace snug::sim {

/// One lane group's worth of work: absolute task indices into the
/// campaign's combo-major (task = combo * n_schemes + scheme) grid.
/// A single-entry plan is executed on the scalar path (no group setup).
struct LaneGroupPlan {
  std::vector<std::size_t> tasks;
};

/// Packs an n_combos x n_schemes campaign grid into lane groups of
/// width `lanes`.  Grouping is scheme-major: the combos of one scheme
/// differ only in seed/rotated workload variant (the replicated-
/// evaluation shape lanes are built for), so each group's lanes share
/// the scheme's control-flow profile.  A final partial chunk of >= 2
/// combos still forms a (narrower) group; a leftover single combo
/// becomes a width-1 plan, which the runner executes on the scalar
/// path.  lanes <= 1 yields one width-1 plan per task (pure scalar).
[[nodiscard]] std::vector<LaneGroupPlan> plan_lane_groups(
    std::size_t n_combos, std::size_t n_schemes, std::uint32_t lanes);

/// W independent CmpSystems advanced in lockstep by round-robin quanta.
class LaneGroup {
 public:
  /// Cycles each lane advances per round-robin turn.  Large enough to
  /// amortise re-warming the host cache with the lane's working set at
  /// each switch (a lane's hot arenas span a few MB — comparable to a
  /// host L2 — so switches are expensive: on the 1-core dev host,
  /// 4096-cycle quanta measured ~5% slower than 32768 at W=4, and
  /// 131072 bought nothing further); small enough that lanes stay
  /// within a small fraction of a run window of each other in virtual
  /// time (irrelevant for correctness — lanes share no state — but
  /// keeps progress reporting honest).
  static constexpr Cycle kQuantum = 32768;

  void add_lane(std::unique_ptr<CmpSystem> sys) {
    lanes_.push_back(std::move(sys));
  }

  [[nodiscard]] std::size_t width() const noexcept { return lanes_.size(); }

  [[nodiscard]] CmpSystem& lane(std::size_t i) {
    SNUG_REQUIRE(i < lanes_.size());
    return *lanes_[i];
  }

  /// Advances every lane by exactly `cycles` cycles through the masked
  /// stepping path.  Equivalent to calling lane(i).run(cycles) for each
  /// lane (CmpSystem::run is resumable, step_masked is bit-exact to
  /// step); the quantum interleave only changes host-side locality.
  void run(Cycle cycles);

 private:
  std::vector<std::unique_ptr<CmpSystem>> lanes_;
};

}  // namespace snug::sim
