// WarmStateBank — a fingerprint-keyed disk store for post-warm-up system
// checkpoints (ISSUE 6).
//
// A campaign over the paper grid re-warms every (scenario, workload,
// scheme) point from cold even when only the measurement phase differs
// between benches.  Under `warmup-mode=functional` the post-warm-up
// state is small and closed (cache arenas, scheme epoch state, RNG and
// stream cursors — no in-flight timing state, because the functional
// warm-up never creates any), so it can be serialized once and restored
// by every later point sharing the same (scenario, workload, warmup,
// scheme) prefix: restore + measure is bit-identical to warm + measure
// (pinned by tests/sim/warm_state_test.cpp).
//
// The on-disk format follows EvalCache (sim/runner.hpp): a versioned,
// fingerprinted, host-endian header (with a payload CRC-32C since v2)
// followed by an exact-size payload; stores write a uniquely named temp
// file and rename() it into place, so concurrent writers never expose a
// torn entry and loads reject anything truncated, oversized, corrupt or
// stale — every rejection falls back to a fresh warm-up simulation.
// Like EvalCache, rejections are classified: stale entries (wrong
// version/fingerprint) stay in place, structurally corrupt files are
// quarantined into `<dir>/quarantine/`, and opening the bank reaps temp
// files whose writer process is dead (sim/store_recovery.hpp).  All I/O
// goes through the fault::Env seam.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "sim/config.hpp"

namespace snug::sim {

class WarmStateBank {
 public:
  static constexpr std::uint32_t kMagic = 0x4D57554E;  // "NUWM"
  /// v1: initial warm-state blob layout (see CmpSystem::save_warm_state
  /// for the field sequence).  Bump whenever any serialized structure
  /// changes shape so stale checkpoints are rejected wholesale.
  /// v2: the header grew a payload CRC-32C (and a reserved pad word);
  /// v1 entries have a 24-byte header and are rejected by version.
  static constexpr std::uint32_t kVersion = 2;
  /// Hard upper bound on a plausible checkpoint (a 16-core paper-scale
  /// system is a few hundred MB of arenas); anything larger is treated
  /// as corruption.
  static constexpr std::uint64_t kMaxBytes = 1ULL << 32;

  /// Recovery actions taken by this instance (see the class comment).
  struct Recovery {
    std::uint64_t reaped_temps = 0;  ///< dead writers' temps removed on open
    std::uint64_t quarantined = 0;   ///< corrupt entries renamed aside
    /// Oldest quarantine/ entries removed at open to stay within the
    /// kQuarantineCap bound (sim/store_recovery.hpp).
    std::uint64_t quarantine_trimmed = 0;
  };

  /// `dir` is created on demand; pass "" to disable the bank.  Opening
  /// runs the orphaned-temp reap and the quarantine bound.
  explicit WarmStateBank(std::string dir);

  WarmStateBank(const WarmStateBank&) = delete;
  WarmStateBank& operator=(const WarmStateBank&) = delete;

  [[nodiscard]] bool load(const std::string& key, std::uint64_t fingerprint,
                          std::vector<std::byte>& blob) const;
  void store(const std::string& key, std::uint64_t fingerprint,
             const std::vector<std::byte>& blob) const;

  /// Cheap presence probe (header-only validation) for --dry-run
  /// hit/miss prediction; a true result can still fail a later full
  /// load if the file is torn mid-payload.
  [[nodiscard]] bool contains(const std::string& key,
                              std::uint64_t fingerprint) const;

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }

  [[nodiscard]] Recovery recovery() const noexcept {
    return {reaped_temps_.load(std::memory_order_relaxed),
            quarantined_.load(std::memory_order_relaxed),
            quarantine_trimmed_.load(std::memory_order_relaxed)};
  }

 private:
  [[nodiscard]] std::string entry_path(const std::string& key) const;

  const fault::Env* env_;  ///< resolved at construction (fault seam)
  std::string dir_;
  mutable std::atomic<std::uint64_t> store_seq_{0};  ///< unique temp names
  std::atomic<std::uint64_t> reaped_temps_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> quarantine_trimmed_{0};
};

/// Default bank directory: $SNUG_WARM_BANK_DIR or .snug_warm_bank under
/// the current working directory.
[[nodiscard]] std::string default_warm_bank_dir();

/// Fingerprint of one warm-up prefix: covers exactly the inputs the
/// functional warm-up reads — topology and geometries, core cadence,
/// bus/DRAM, the latencies on the scheme's access path, warmup_cycles,
/// phase_period_refs, warmup_mode, the workload combo and the scheme
/// spec — salted with the bank format version.  Knobs the warm-up
/// provably never consults stay out: measure_cycles, the WBB config
/// (functional warm-up keeps the buffers empty), the lane width, and
/// other schemes' ablation knobs — so e.g. every CC(x%) point shares
/// its checkpoint across `monitor-sample=` or measurement-length
/// changes, while L2P/L2S/SNUG/DSR and distinct CC thresholds stay
/// distinct (the scheme id is part of the key, and different spill
/// probabilities genuinely diverge during warm-up).
[[nodiscard]] std::uint64_t warm_fingerprint(const SystemConfig& cfg,
                                             const RunScale& scale,
                                             const trace::WorkloadCombo& combo,
                                             const schemes::SchemeSpec& spec);

}  // namespace snug::sim
