// CmpSystem — the assembled N-core machine: cores, private L1I/L1D, an
// L2 organisation (scheme), the snoop bus and DRAM, driven by synthetic
// instruction streams.  Implements cpu::MemoryPort: every L1 miss is
// routed through the scheme, which updates all state synchronously and
// returns the completion cycle.
#pragma once

#include <memory>
#include <vector>

#include "cpu/core.hpp"
#include "schemes/factory.hpp"
#include "sim/config.hpp"
#include "sim/scenario.hpp"
#include "trace/synth_stream.hpp"
#include "trace/workloads.hpp"

namespace snug::sim {

class CmpSystem final : public cpu::MemoryPort {
 public:
  CmpSystem(const SystemConfig& cfg, const schemes::SchemeSpec& spec,
            const trace::WorkloadCombo& combo, const RunScale& scale);

  /// The machine a scenario describes, running `combo` under `spec`.
  CmpSystem(const ScenarioSpec& scenario, const schemes::SchemeSpec& spec,
            const trace::WorkloadCombo& combo);

  /// Advances the machine by `cycles` core cycles.
  void run(Cycle cycles);

  /// Clears all statistics (contents survive) and marks the start of a
  /// measurement window.
  void begin_measurement();

  /// Per-core IPC over the current measurement window.
  [[nodiscard]] std::vector<double> measured_ipc() const;

  // cpu::MemoryPort
  Cycle data_access(CoreId core, Addr addr, bool is_write,
                    Cycle now) override;
  Cycle inst_fetch(CoreId core, Addr addr, Cycle now) override;

  // Introspection for tests and benches.
  [[nodiscard]] schemes::L2Scheme& scheme() { return *scheme_; }
  [[nodiscard]] const schemes::L2Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] bus::SnoopBus& snoop_bus() { return *bus_; }
  [[nodiscard]] dram::DramModel& dram() { return *dram_; }
  [[nodiscard]] cpu::Core& core(CoreId c);
  [[nodiscard]] cache::SetAssocCache& l1d(CoreId c);
  [[nodiscard]] trace::SyntheticStream& stream(CoreId c);
  [[nodiscard]] Cycle now() const noexcept { return now_; }

 private:
  void build(const schemes::SchemeSpec& spec,
             const trace::WorkloadCombo& combo, const RunScale& scale);

  SystemConfig cfg_;
  std::unique_ptr<bus::SnoopBus> bus_;
  std::unique_ptr<dram::DramModel> dram_;
  std::unique_ptr<schemes::L2Scheme> scheme_;
  std::vector<std::unique_ptr<cache::SetAssocCache>> l1i_;
  std::vector<std::unique_ptr<cache::SetAssocCache>> l1d_;
  std::vector<std::unique_ptr<trace::SyntheticStream>> streams_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
  Cycle now_ = 0;
  Cycle window_start_ = 0;
};

}  // namespace snug::sim
