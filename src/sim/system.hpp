// CmpSystem — the assembled N-core machine: cores, private L1I/L1D, an
// L2 organisation (scheme), the snoop bus and DRAM, driven by synthetic
// instruction streams.  Implements cpu::MemoryPort: every L1 miss is
// routed through the scheme, which updates all state synchronously and
// returns the completion cycle.
#pragma once

#include <memory>
#include <vector>

#include "cpu/core.hpp"
#include "schemes/factory.hpp"
#include "sim/config.hpp"
#include "sim/scenario.hpp"
#include "trace/synth_stream.hpp"
#include "trace/workloads.hpp"

namespace snug::sim {

class CmpSystem final : public cpu::MemoryPort {
 public:
  CmpSystem(const SystemConfig& cfg, const schemes::SchemeSpec& spec,
            const trace::WorkloadCombo& combo, const RunScale& scale);

  /// The machine a scenario describes, running `combo` under `spec`.
  CmpSystem(const ScenarioSpec& scenario, const schemes::SchemeSpec& spec,
            const trace::WorkloadCombo& combo);

  /// Advances the machine by `cycles` core cycles.
  void run(Cycle cycles);

  /// run() with free-running cores (cpu::Core::step_masked): each core
  /// simulates ahead through its core-local work — plain instructions,
  /// L1 hits, retirement — in one call, parking at shared-state events
  /// (L1 misses) so those still execute in exact global (cycle, core)
  /// order.  The simulated state evolution is bit-identical to run();
  /// only the host-side scheduling differs.  The lane engine
  /// (sim/lane_engine.hpp) uses this for its lane quanta; run() and
  /// run_masked() may be interleaved freely on one machine (no park
  /// survives a run window).
  void run_masked(Cycle cycles);

  /// Functional fast-forward warm-up (warmup-mode=functional): drives
  /// the same instruction streams through the same L1/L2/scheme *state*
  /// machinery as run() — fills, spills, retrieves, monitor and shadow
  /// events, epoch ticks at their exact boundaries — but skips the
  /// timing machinery wholesale (no bus/DRAM booking, no write-back
  /// buffering, no ROB/LSQ occupancy; see L2Scheme::set_functional_
  /// warmup).  A lightweight per-core cursor replays the core's fetch/
  /// dispatch cadence against an estimated clock so reference density
  /// per epoch stays realistic; the cores themselves are never stepped
  /// and remain in their just-built state.  Must be called on a freshly
  /// built machine, before any run(); afterwards the machine state is
  /// the closed set save_warm_state() serializes, and run() continues
  /// in full timing from `now()`.
  void warm_functional(Cycle cycles);

  /// Serializes the post-functional-warm-up machine (now_, L1 arenas,
  /// stream cursors, scheme warm state) into a self-contained blob.
  /// load_warm_state on a freshly built same-config machine restores it
  /// bit-exactly: restore + run() is identical to warm_functional +
  /// run() in-process (pinned by tests/sim/warm_state_test.cpp).
  [[nodiscard]] std::vector<std::byte> save_warm_state() const;
  void load_warm_state(const std::vector<std::byte>& blob);

  /// Clears all statistics (contents survive) and marks the start of a
  /// measurement window.
  void begin_measurement();

  /// Per-core IPC over the current measurement window.
  [[nodiscard]] std::vector<double> measured_ipc() const;

  /// Name-based snapshot of every component's counters (bus, DRAM, L1s,
  /// scheme + slices) — the once-per-report path of the SoA stats
  /// pipeline (stats/counters.hpp).
  [[nodiscard]] stats::CounterReport counter_report() const;

  // cpu::MemoryPort, split into a core-local probe and a shared-state
  // miss half.  The split serves the free-running lane path
  // (cpu::Core::step_masked): the probe touches only the calling core's
  // L1 — rank updates, dirty marks, hit/miss counters — so a core may
  // issue it while running ahead of the global clock, and park before
  // the miss half, which reaches the scheme/bus/DRAM and must happen in
  // global (cycle, core) order.  data_access/inst_fetch compose the two
  // halves verbatim, so the scalar path is bit-identical by
  // construction.  All defined inline: these calls are the boundary
  // between the core model and the memory hierarchy — every simulated
  // load, store and ifetch crosses it, and the L1-hit fast path below
  // must fold into the caller rather than pay a cross-TU call.
  bool probe_data(CoreId core, Addr addr, bool is_write) {
    return l1d_[core].access_local(addr, is_write).hit;
  }

  /// The L1D-miss half: `probe_data` already ran and missed.
  Cycle miss_data(CoreId core, Addr addr, bool is_write, Cycle now) {
    cache::SetAssocCache& l1 = l1d_[core];
    const Cycle completion = scheme_->access(core, addr, is_write, now);
    const Addr block = l1.geometry().block_of(addr);
    const cache::Eviction ev = l1.fill_local(block, is_write, core);
    if (ev.happened() && ev.line.dirty) {
      const Addr victim = l1.geometry().addr_of(ev.line.tag, ev.set);
      scheme_->l1_writeback(core, victim, now);
    }
    return completion > now ? completion : now + 1;
  }

  bool probe_inst(CoreId core, Addr addr) {
    return l1i_[core].access_local(addr, false).hit;
  }

  /// The L1I-miss half: `probe_inst` already ran and missed.
  Cycle miss_inst(CoreId core, Addr addr, Cycle now) {
    cache::SetAssocCache& l1 = l1i_[core];
    const Cycle completion = scheme_->access(core, addr, false, now);
    const Addr block = l1.geometry().block_of(addr);
    l1.fill_local(block, false, core);  // I-lines are never dirty
    return completion > now ? completion : now + 1;
  }

  Cycle data_access(CoreId core, Addr addr, bool is_write,
                    Cycle now) override {
    if (probe_data(core, addr, is_write)) return now + 1;
    return miss_data(core, addr, is_write, now);
  }

  Cycle inst_fetch(CoreId core, Addr addr, Cycle now) override {
    if (probe_inst(core, addr)) return now + 1;
    return miss_inst(core, addr, now);
  }

  // Introspection for tests and benches.
  [[nodiscard]] schemes::L2Scheme& scheme() { return *scheme_; }
  [[nodiscard]] const schemes::L2Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] bus::SnoopBus& snoop_bus() { return *bus_; }
  [[nodiscard]] dram::DramModel& dram() { return *dram_; }
  [[nodiscard]] cpu::Core<CmpSystem>& core(CoreId c);
  [[nodiscard]] cache::SetAssocCache& l1d(CoreId c);
  [[nodiscard]] trace::SyntheticStream& stream(CoreId c);
  [[nodiscard]] Cycle now() const noexcept { return now_; }

 private:
  void build(const schemes::SchemeSpec& spec,
             const trace::WorkloadCombo& combo, const RunScale& scale);

  template <bool kMasked>
  void run_impl(Cycle cycles);

  SystemConfig cfg_;
  std::unique_ptr<bus::SnoopBus> bus_;
  std::unique_ptr<dram::DramModel> dram_;
  std::unique_ptr<schemes::L2Scheme> scheme_;
  // Value storage: the L1 probe is the innermost loop of the whole
  // simulator, and one pointer chase per access is measurable there.
  std::vector<cache::SetAssocCache> l1i_;
  std::vector<cache::SetAssocCache> l1d_;
  std::vector<std::unique_ptr<trace::SyntheticStream>> streams_;
  // Cores are sealed against this (final) system: the per-instruction
  // data_access/inst_fetch calls devirtualise and inline.
  std::vector<std::unique_ptr<cpu::Core<CmpSystem>>> cores_;
  // Per-core next-event cycle: run() skips a core while now_ is below its
  // wake cycle instead of re-entering a no-op step() every cycle.
  std::vector<Cycle> core_wake_;
  Cycle now_ = 0;
  Cycle window_start_ = 0;
};

}  // namespace snug::sim
