#include "sim/figures.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/str.hpp"
#include "stats/aggregate.hpp"
#include "stats/metrics.hpp"

namespace snug::sim {

const char* to_string(Metric m) noexcept {
  switch (m) {
    case Metric::kThroughputNorm:
      return "throughput (normalised to L2P)";
    case Metric::kAws:
      return "average weighted speedup";
    case Metric::kFairSpeedup:
      return "fair speedup";
  }
  return "?";
}

double metric_value(Metric m, const std::vector<double>& scheme_ipc,
                    const std::vector<double>& base_ipc) {
  SNUG_REQUIRE(scheme_ipc.size() == base_ipc.size());
  switch (m) {
    case Metric::kThroughputNorm:
      return stats::throughput(scheme_ipc) / stats::throughput(base_ipc);
    case Metric::kAws:
      return stats::average_weighted_speedup(scheme_ipc, base_ipc);
    case Metric::kFairSpeedup:
      return stats::fair_speedup(scheme_ipc, base_ipc);
  }
  SNUG_ENSURE(false);
  return 0.0;
}

double cc_best_value(const ComboResults& combo_results, Metric metric) {
  const auto& base = combo_results.at("L2P").ipc;
  double best = 0.0;
  bool any = false;
  for (const auto& [id, result] : combo_results) {
    if (id.rfind("CC(", 0) != 0) continue;
    const double v = metric_value(metric, result.ipc, base);
    if (!any || v > best) {
      best = v;
      any = true;
    }
  }
  SNUG_REQUIRE(any);
  return best;
}

FigureSeries assemble_figure(const CampaignResults& results,
                             Metric metric) {
  FigureSeries fig;
  fig.schemes = {"L2S", "CC(Best)", "DSR", "SNUG"};

  for (const auto& scheme : fig.schemes) {
    std::vector<stats::ClassValue> observations;
    for (const auto& combo : trace::all_combos()) {
      const auto it = results.find(combo.name);
      SNUG_REQUIRE(it != results.end());
      const auto& combo_results = it->second;
      const auto& base = combo_results.at("L2P").ipc;
      double v = 0.0;
      if (scheme == "CC(Best)") {
        v = cc_best_value(combo_results, metric);
      } else {
        v = metric_value(metric, combo_results.at(scheme).ipc, base);
      }
      observations.push_back({combo.combo_class, v});
    }
    fig.values[scheme] = stats::per_class_geomean(observations, 6);
  }
  return fig;
}

TextTable figure_table(const FigureSeries& fig) {
  TextTable table({"scheme", "C1", "C2", "C3", "C4", "C5", "C6", "AVG"});
  for (const auto& scheme : fig.schemes) {
    std::vector<std::string> row{scheme};
    for (const double v : fig.values.at(scheme)) {
      row.push_back(strf("%.3f", v));
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string render_cell_csv(const CampaignResults& results) {
  std::string out = "combo,scheme,ipc...\n";
  for (const auto& [combo, combo_results] : results) {
    for (const auto& [scheme, result] : combo_results) {
      out += combo;
      out += ',';
      out += scheme;
      for (const double ipc : result.ipc) {
        out += ',';
        out += strf("%.17g", ipc);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace snug::sim
