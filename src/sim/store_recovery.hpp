// Shared crash-recovery helpers for the on-disk stores (ISSUE 8).
//
// EvalCache and WarmStateBank publish entries by writing a uniquely
// named `<key>.tmp.<pid>.<seq>` file and renaming it into place.  A
// writer killed between the write and the rename leaves the temp behind
// forever; an entry that fails structural validation (bad magic,
// truncation, trailing garbage, payload CRC mismatch) used to sit in
// the directory shadowing every future store.  These helpers implement
// the two recovery actions both stores run:
//
//   * reap_orphaned_temps — on open, delete temp files whose writer
//     process is dead (kill(pid, 0) probe).  Temps of live writers are
//     left alone: they are about to be renamed or cleaned by their
//     owner.
//   * quarantine_entry — rename a corrupt entry into
//     `<dir>/quarantine/<name>.<pid>.<seq>` (never delete: the bytes
//     are evidence).  The caller then recomputes and rewrites.
//   * bound_quarantine — cap how much evidence accumulates: beyond
//     kQuarantineCap entries the oldest surplus is removed (with an
//     informational report line), so a store that heals corruption for
//     months cannot fill the disk with it.
//   * reap_stale_journals — `<path>.stale.<pid>` journals moved aside
//     by CampaignJournal are removed once their writer is dead, the
//     same liveness probe as the temp reap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/fault.hpp"

namespace snug::sim {

/// Deletes orphaned `*.tmp.<pid>.<seq>` files in `dir` whose owning
/// process no longer exists (or whose name is too mangled to tell).
/// Returns the number reaped.  Valid entries and live writers' temps
/// are untouched.
std::uint64_t reap_orphaned_temps(const fault::Env& env,
                                  const std::string& dir);

/// Moves `dir`/`name` aside into `dir`/quarantine/ under a unique name
/// so it stops shadowing fresh stores but stays inspectable.  Returns
/// false when the rename (or quarantine-dir creation) fails — the
/// caller degrades to ignoring the entry in place.
bool quarantine_entry(const fault::Env& env, const std::string& dir,
                      const std::string& name, std::uint64_t uniq);

/// Default bound on `<dir>/quarantine/` entries (see bound_quarantine).
inline constexpr std::size_t kQuarantineCap = 256;

/// Bounds `<dir>/quarantine/` to at most `max_keep` entries by removing
/// the lexicographically-first surplus (the Env has no mtime, so the
/// sorted scan order is the deterministic stand-in for age; quarantine
/// names embed pid.seq, so for one long-lived writer that order IS
/// arrival order).  Prints one informational line naming the directory
/// and the count removed; returns that count.  A no-op (0) when the
/// directory is missing or within bounds.
std::uint64_t bound_quarantine(const fault::Env& env, const std::string& dir,
                               std::size_t max_keep = kQuarantineCap);

/// Removes `<journal>.stale.<pid>` siblings — journals a prior
/// CampaignJournal open moved aside as belonging to another campaign —
/// once their writer process is dead (same kill(pid, 0) probe as the
/// temp reap; unparseable pids count as dead).  Returns the number
/// removed.  Live writers' stale files are left for their owner.
std::uint64_t reap_stale_journals(const fault::Env& env,
                                  const std::string& journal_path);

}  // namespace snug::sim
