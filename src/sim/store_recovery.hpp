// Shared crash-recovery helpers for the on-disk stores (ISSUE 8).
//
// EvalCache and WarmStateBank publish entries by writing a uniquely
// named `<key>.tmp.<pid>.<seq>` file and renaming it into place.  A
// writer killed between the write and the rename leaves the temp behind
// forever; an entry that fails structural validation (bad magic,
// truncation, trailing garbage, payload CRC mismatch) used to sit in
// the directory shadowing every future store.  These helpers implement
// the two recovery actions both stores run:
//
//   * reap_orphaned_temps — on open, delete temp files whose writer
//     process is dead (kill(pid, 0) probe).  Temps of live writers are
//     left alone: they are about to be renamed or cleaned by their
//     owner.
//   * quarantine_entry — rename a corrupt entry into
//     `<dir>/quarantine/<name>.<pid>.<seq>` (never delete: the bytes
//     are evidence).  The caller then recomputes and rewrites.
#pragma once

#include <cstdint>
#include <string>

#include "common/fault.hpp"

namespace snug::sim {

/// Deletes orphaned `*.tmp.<pid>.<seq>` files in `dir` whose owning
/// process no longer exists (or whose name is too mangled to tell).
/// Returns the number reaped.  Valid entries and live writers' temps
/// are untouched.
std::uint64_t reap_orphaned_temps(const fault::Env& env,
                                  const std::string& dir);

/// Moves `dir`/`name` aside into `dir`/quarantine/ under a unique name
/// so it stops shadowing fresh stores but stays inspectable.  Returns
/// false when the rename (or quarantine-dir creation) fails — the
/// caller degrades to ignoring the entry in place.
bool quarantine_entry(const fault::Env& env, const std::string& dir,
                      const std::string& name, std::uint64_t uniq);

}  // namespace snug::sim
