// Metric assembly for the paper's evaluation figures.
//
// Figure 9:  throughput normalised to L2P      (Table 5: sum of IPCs)
// Figure 10: average weighted speedup vs. L2P  (arithmetic mean of rel-IPC)
// Figure 11: fair speedup vs. L2P              (harmonic mean of rel-IPC)
//
// Per Section 5, the value reported for a workload class is the geometric
// mean over that class's combinations (stats/aggregate.hpp); CC(Best)
// picks, per combination, the spill probability with the best value of
// the metric in question.  The campaign itself — which (combo, scheme)
// runs exist and how they fan out over threads — lives in
// sim/campaign.hpp; this header only turns CampaignResults into figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/campaign.hpp"

namespace snug::sim {

enum class Metric : std::uint8_t {
  kThroughputNorm,  ///< Figure 9
  kAws,             ///< Figure 10
  kFairSpeedup,     ///< Figure 11
};

[[nodiscard]] const char* to_string(Metric m) noexcept;

/// The metric value of `scheme_ipc` relative to the L2P baseline.
[[nodiscard]] double metric_value(Metric m,
                                  const std::vector<double>& scheme_ipc,
                                  const std::vector<double>& base_ipc);

/// One row of a figure: scheme -> value per class C1..C6 plus AVG (index 6).
struct FigureSeries {
  std::vector<std::string> schemes;  ///< L2S, CC(Best), DSR, SNUG
  std::map<std::string, std::vector<double>> values;  ///< size 7 each
};

/// Assembles a figure from campaign results.
[[nodiscard]] FigureSeries assemble_figure(const CampaignResults& results,
                                           Metric metric);

/// Renders a figure as the benches print it: scheme rows, C1..C6 + AVG
/// columns, %.3f cells.  figure_table(fig).render_csv() is the literal
/// fig9/10/11 CSV, shared by the figure benches and the golden
/// bit-identity test.
[[nodiscard]] TextTable figure_table(const FigureSeries& fig);

/// Full-precision per-cell dump: one "combo,scheme,ipc0,ipc1,..." line
/// per (combo, scheme), with every per-core IPC printed round-trip
/// exactly (%.17g).  IPCs are plain divisions of deterministic integer
/// counters, so this string is bit-identical across machines and
/// optimisation levels — the strongest pin the golden test hashes.
[[nodiscard]] std::string render_cell_csv(const CampaignResults& results);

/// CC(Best): the best CC(p) value for this combo under `metric`.
[[nodiscard]] double cc_best_value(const ComboResults& combo_results,
                                   Metric metric);

}  // namespace snug::sim
