// ScenarioSpec — one declarative description of a whole experiment
// machine: topology (core count, L1/L2 geometries, bus, DRAM), workload
// (a paper combo table, a generated class-pattern mix, or an explicit
// benchmark list) and run scale.  Any run is reproducible from one spec
// line:
//
//   cores=8 workload=2A+1B+1C variants=3 l2-kb=512
//
// Specs parse from key=value strings (whitespace/comma separated) or
// from spec files (one directive per line, '#' comments).  The default
// spec is the paper's Table 4 quad-core machine with the Table 8
// workload — ScenarioSpec::paper() reproduces the existing figure
// campaigns bit-identically.
//
// Grammar (every key optional, later keys override earlier ones):
//   name=<id>             scenario label (reports, bench output)
//   cores=<n>             2..64 cores / private L2 slices
//   l1-kb=, l1-assoc=     per-core L1I/L1D geometry (default 32 KB 4-way)
//   l2-kb=, l2-assoc=     per-core private L2 slice (default 1024 KB
//                         16-way); the shared-L2 aggregate is always
//                         cores x slice
//   line-bytes=<n>        cache line size everywhere (default 64)
//   bus-bytes=, bus-ratio=   snoop-bus width / core:bus clock ratio
//   dram-latency=<cycles>
//   monitor-sample=<n>    1-in-N SNUG/DSR monitor event sampling
//                         (default 1 = exact)
//   lanes=<w>             lane-parallel campaign width, 1|2|4|8 (default
//                         1 = scalar engine; W > 1 packs W points per
//                         campaign worker through the masked stepping
//                         path — bit-identical results, see
//                         sim/lane_engine.hpp)
//   workload=paper        all 21 Table-8 combos (4-core only)
//   workload=class<1..6>  one Table-8 class (4-core only)
//   workload=<pattern>    generated mix, e.g. 2A+1B+1C (any core count
//                         the pattern total divides)
//   workload=<benches>    explicit combo, e.g. ammp+parser+bzip2+mcf
//                         (one benchmark per core)
//   variants=<n>          how many rotated instances of a pattern mix
//   warmup-mode=<m>       timing (default: full-timing warm-up) or
//                         functional (fast-forward: cache/scheme state
//                         only, timing machinery skipped; enables the
//                         warm-state bank — see sim/warm_state.hpp)
//   warmup-cycles=, measure-cycles=, phase-refs=   run scale overrides
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "trace/workloads.hpp"

namespace snug::sim {

/// How a scenario selects its workload combos.
struct WorkloadSpec {
  enum class Kind : std::uint8_t {
    kPaper,      ///< all Table-8 combos (requires 4 cores)
    kClass,      ///< one Table-8 class (requires 4 cores)
    kPattern,    ///< generated class-pattern mix, any fitting core count
    kBenchList,  ///< one explicit combo, one benchmark per core
    kExplicit,   ///< programmatic combo list (tests, custom campaigns)
  };
  Kind kind = Kind::kPaper;
  int combo_class = 0;                       ///< kClass
  trace::MixPattern pattern;                 ///< kPattern
  std::uint32_t variants = 1;                ///< kPattern
  std::vector<std::string> benchmarks;       ///< kBenchList
  std::vector<trace::WorkloadCombo> combos;  ///< kExplicit
};

struct ScenarioSpec {
  std::string name = "paper";

  // ---- topology --------------------------------------------------------
  std::uint32_t num_cores = 4;
  std::uint32_t l1_kb = 32;
  std::uint32_t l1_assoc = 4;
  std::uint32_t l2_slice_kb = 1024;  ///< per-core private slice
  std::uint32_t l2_assoc = 16;
  std::uint32_t line_bytes = 64;
  std::uint32_t bus_width_bytes = 16;
  std::uint32_t bus_speed_ratio = 4;
  Cycle dram_latency = 300;
  /// 1-in-N sampling of the SNUG/DSR capacity-monitor events (shadow
  /// probes/inserts and counter updates).  1 (default) is exact and
  /// bit-identical to the pre-knob simulator; N > 1 trades monitor
  /// fidelity for speed — harvest decisions stay statistically stable at
  /// realistic epoch lengths (tests/core/monitor_sampling_test).
  std::uint32_t monitor_sample = 1;

  // ---- workload / scale ------------------------------------------------
  WorkloadSpec workload;
  RunScale scale;

  /// "" when the spec describes a buildable machine; otherwise one clear
  /// sentence naming the offending field.  Checked by system_config() and
  /// combos(), so misconfiguration fails at build time with a real
  /// message instead of tripping an assertion deep in a scheme.
  [[nodiscard]] std::string validate() const;

  /// The SystemConfig this scenario describes.  Derived pieces follow the
  /// topology: the shared-L2 aggregate is num_cores x slice, the SNUG
  /// monitor mirrors the slice geometry.  Aborts (with the validate()
  /// message) on an invalid spec.
  [[nodiscard]] SystemConfig system_config() const;

  /// The workload combos this scenario runs, expanded to num_cores.
  [[nodiscard]] std::vector<trace::WorkloadCombo> combos() const;

  /// Canonical spec string; parse_scenario() round-trips it.  The one
  /// exception is a kExplicit workload with more than one combo — that
  /// shape is programmatic-only and not representable in the grammar.
  [[nodiscard]] std::string spec_string() const;

  /// Human one-liner for bench headers, e.g.
  /// "8c: 8 x 1024KB/16w L2, L1 32KB/4w, 2 combos [1A+1C]".
  [[nodiscard]] std::string summary() const;

  /// The paper's Table 4 machine + Table 8 workload at default scale
  /// (honours SNUG_FULL_SCALE, like paper_system_config()).
  [[nodiscard]] static ScenarioSpec paper();

  /// `paper()` with the workload replaced by an explicit combo list.
  [[nodiscard]] static ScenarioSpec with_combos(
      std::vector<trace::WorkloadCombo> combos);
};

/// Parses a spec string on top of ScenarioSpec::paper() defaults.
/// Directives are key=value tokens separated by whitespace and/or commas.
/// Returns false and a diagnostic in `error` on any unknown key or
/// malformed value; `out` is untouched on failure.
[[nodiscard]] bool parse_scenario(const std::string& text, ScenarioSpec& out,
                                  std::string& error);

/// Like parse_scenario(), starting from `base` instead of paper defaults.
[[nodiscard]] bool parse_scenario(const std::string& text,
                                  const ScenarioSpec& base, ScenarioSpec& out,
                                  std::string& error);

/// Parses a spec file: one directive per line (a line may also hold
/// several tokens), '#' starts a comment, blank lines are ignored.
[[nodiscard]] bool parse_scenario_file(const std::string& path,
                                       ScenarioSpec& out, std::string& error);

/// Fingerprint of everything in the spec that can change simulated
/// numbers: the full topology, the run scale and the expanded workload
/// parameters.  Built on config_fingerprint(), so the eval cache keys on
/// it transitively.
[[nodiscard]] std::uint64_t scenario_fingerprint(const ScenarioSpec& spec);

}  // namespace snug::sim
