#include "sim/scenario.hpp"

#include <fstream>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "trace/profile.hpp"

namespace snug::sim {
namespace {

[[nodiscard]] bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Sets per cache: capacity / (assoc * line); "" on success.
std::string check_geometry(const char* what, std::uint64_t capacity_bytes,
                           std::uint32_t assoc, std::uint32_t line_bytes,
                           std::string& error) {
  if (assoc == 0) return error = strf("%s associativity must be >= 1", what);
  if (!is_power_of_two(line_bytes)) {
    return error = strf("%s line size %u is not a power of two", what,
                        line_bytes);
  }
  const std::uint64_t set_bytes =
      static_cast<std::uint64_t>(assoc) * line_bytes;
  if (capacity_bytes == 0 || capacity_bytes % set_bytes != 0 ||
      !is_power_of_two(capacity_bytes / set_bytes)) {
    return error = strf(
               "%s capacity %llu B does not give a power-of-two set count "
               "at %u ways x %u B lines",
               what, static_cast<unsigned long long>(capacity_bytes), assoc,
               line_bytes);
  }
  return error = "";
}

/// Splits a spec string into tokens on whitespace and commas.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : text) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos ||
      value.size() > 18) {
    return false;
  }
  out = std::stoull(value);
  return true;
}

bool parse_u32(const std::string& value, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(value, v) || v > 0xFFFFFFFFULL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// workload=<value>: paper | class<N> | mix pattern | bench list.
bool parse_workload_value(const std::string& value, WorkloadSpec& out,
                          std::string& error) {
  if (value == "paper") {
    out = WorkloadSpec{};
    return true;
  }
  if (value.rfind("class", 0) == 0) {
    const std::string digits = value.substr(5);
    std::uint32_t cls = 0;
    if (!parse_u32(digits, cls) || cls < 1 || cls > 6) {
      error = "workload class must be class1..class6, got '" + value + "'";
      return false;
    }
    out = WorkloadSpec{};
    out.kind = WorkloadSpec::Kind::kClass;
    out.combo_class = static_cast<int>(cls);
    return true;
  }
  // A '+'-joined value is a class pattern when every term parses as
  // <count><class letter>; otherwise it must be a benchmark list.
  trace::MixPattern pattern;
  std::string pattern_error;
  if (trace::parse_mix_pattern(value, pattern, pattern_error)) {
    out = WorkloadSpec{};
    out.kind = WorkloadSpec::Kind::kPattern;
    out.pattern = std::move(pattern);
    return true;
  }
  std::vector<std::string> benches = split(value, '+');
  for (const auto& b : benches) {
    if (b.empty()) {
      error = "empty benchmark name in workload '" + value + "'";
      return false;
    }
    bool known = false;
    for (const auto& prof : trace::all_profiles()) {
      if (prof.name == b) known = true;
    }
    if (!known) {
      error = strf("workload '%s' is neither a class pattern (%s) nor a "
                   "list of known benchmarks ('%s' is not in the registry)",
                   value.c_str(), pattern_error.c_str(), b.c_str());
      return false;
    }
  }
  out = WorkloadSpec{};
  out.kind = WorkloadSpec::Kind::kBenchList;
  out.benchmarks = std::move(benches);
  return true;
}

std::string workload_value_string(const WorkloadSpec& w) {
  switch (w.kind) {
    case WorkloadSpec::Kind::kPaper:
      return "paper";
    case WorkloadSpec::Kind::kClass:
      return strf("class%d", w.combo_class);
    case WorkloadSpec::Kind::kPattern:
      return w.pattern.to_string();
    case WorkloadSpec::Kind::kBenchList: {
      std::string out;
      for (const auto& b : w.benchmarks) {
        if (!out.empty()) out += '+';
        out += b;
      }
      return out;
    }
    case WorkloadSpec::Kind::kExplicit:
      // A single explicit combo is expressible as a bench list, so the
      // spec string stays parseable; larger programmatic lists are not
      // representable in the grammar.
      if (w.combos.size() == 1) {
        std::string out;
        for (const auto& b : w.combos[0].benchmarks) {
          if (!out.empty()) out += '+';
          out += b;
        }
        return out;
      }
      return strf("<%zu explicit combos>", w.combos.size());
  }
  return "?";
}

}  // namespace

std::string ScenarioSpec::validate() const {
  std::string error;
  if (num_cores < 2 || num_cores > 64) {
    return strf("cores=%u is out of range (the cooperative schemes need "
                "2..64 cores)",
                num_cores);
  }
  if (!check_geometry("L1", static_cast<std::uint64_t>(l1_kb) << 10,
                      l1_assoc, line_bytes, error)
           .empty()) {
    return error;
  }
  if (!check_geometry("L2 slice",
                      static_cast<std::uint64_t>(l2_slice_kb) << 10,
                      l2_assoc, line_bytes, error)
           .empty()) {
    return error;
  }
  const std::uint64_t slice_sets =
      (static_cast<std::uint64_t>(l2_slice_kb) << 10) /
      (static_cast<std::uint64_t>(l2_assoc) * line_bytes);
  // The SNUG grouper pairs each set with its last-index-bit buddy, so a
  // slice needs at least one buddy pair.
  if (slice_sets < 2) {
    return strf("L2 slice has %llu set(s); index-bit flipping needs >= 2",
                static_cast<unsigned long long>(slice_sets));
  }
  // The shared-L2 aggregate (cores x slice) keeps a power-of-two set
  // count only for power-of-two core counts.
  if (!is_power_of_two(num_cores)) {
    return strf("cores=%u: the shared-L2 aggregate (cores x slice) needs a "
                "power-of-two core count",
                num_cores);
  }
  if (bus_width_bytes == 0 || bus_speed_ratio == 0) {
    return "bus-bytes and bus-ratio must be >= 1";
  }
  if (dram_latency == 0) return "dram-latency must be >= 1";
  if (monitor_sample == 0 || monitor_sample > (1U << 20)) {
    return strf("monitor-sample=%u is out of range (1..%u)", monitor_sample,
                1U << 20);
  }
  if (scale.lanes != 1 && scale.lanes != 2 && scale.lanes != 4 &&
      scale.lanes != 8) {
    return strf("lanes=%u is not a supported lane width (1, 2, 4 or 8)",
                scale.lanes);
  }
  if (scale.warmup_cycles == 0 || scale.measure_cycles == 0 ||
      scale.phase_period_refs == 0) {
    return "warmup-cycles, measure-cycles and phase-refs must be >= 1";
  }

  switch (workload.kind) {
    case WorkloadSpec::Kind::kPaper:
    case WorkloadSpec::Kind::kClass:
      if (num_cores != 4) {
        return strf("workload=%s uses the quad-core Table 8 combos, but "
                    "the scenario has %u cores — use a class pattern "
                    "(e.g. workload=2A+1B+1C) instead",
                    workload_value_string(workload).c_str(), num_cores);
      }
      break;
    case WorkloadSpec::Kind::kPattern: {
      if (workload.variants == 0) return "variants must be >= 1";
      trace::WorkloadCombo probe;
      if (!trace::expand_mix_pattern(workload.pattern, num_cores, 0, probe,
                                     error)) {
        return error;
      }
      break;
    }
    case WorkloadSpec::Kind::kBenchList:
      if (workload.benchmarks.size() != num_cores) {
        return strf("workload lists %zu benchmarks but the scenario has "
                    "%u cores (one benchmark per core)",
                    workload.benchmarks.size(), num_cores);
      }
      break;
    case WorkloadSpec::Kind::kExplicit:
      for (const auto& combo : workload.combos) {
        if (combo.benchmarks.size() != num_cores) {
          return strf("combo '%s' provides %zu benchmarks but the scenario "
                      "machine has %u cores",
                      combo.name.c_str(), combo.benchmarks.size(),
                      num_cores);
        }
      }
      break;
  }
  return "";
}

SystemConfig ScenarioSpec::system_config() const {
  const std::string error = validate();
  SNUG_REQUIRE_MSG(error.empty(), "invalid scenario '%s': %s", name.c_str(),
                   error.c_str());

  // Start from the paper machine so every knob the spec does not expose
  // (core pipeline, WBB, SNUG counters/epochs, latencies) keeps its
  // Table 4 value — the default spec is field-for-field identical to
  // paper_system_config().
  SystemConfig cfg = paper_system_config();
  cfg.num_cores = num_cores;
  cfg.l1i = cache::CacheGeometry(static_cast<std::uint64_t>(l1_kb) << 10,
                                 l1_assoc, line_bytes);
  cfg.l1d = cfg.l1i;
  cfg.scheme_ctx.priv.num_cores = num_cores;
  cfg.scheme_ctx.priv.l2 = cache::CacheGeometry(
      static_cast<std::uint64_t>(l2_slice_kb) << 10, l2_assoc, line_bytes);
  cfg.scheme_ctx.shared.num_cores = num_cores;
  cfg.scheme_ctx.shared.l2 = cache::CacheGeometry(
      (static_cast<std::uint64_t>(l2_slice_kb) << 10) * num_cores, l2_assoc,
      line_bytes);
  cfg.scheme_ctx.snug.monitor.num_sets = cfg.scheme_ctx.priv.l2.num_sets();
  cfg.scheme_ctx.snug.monitor.assoc =
      cfg.scheme_ctx.priv.l2.associativity();
  cfg.bus.width_bytes = bus_width_bytes;
  cfg.bus.speed_ratio = bus_speed_ratio;
  cfg.bus.block_bytes = line_bytes;
  cfg.dram.latency = dram_latency;
  // One knob drives both capacity monitors: the sampling maths (the 1/N
  // factor cancelling out of the sigma > 1/p compare) is the same.
  cfg.scheme_ctx.snug.monitor.sample_period = monitor_sample;
  cfg.scheme_ctx.dsr.sample_period = monitor_sample;
  return cfg;
}

std::vector<trace::WorkloadCombo> ScenarioSpec::combos() const {
  const std::string error = validate();
  SNUG_REQUIRE_MSG(error.empty(), "invalid scenario '%s': %s", name.c_str(),
                   error.c_str());
  switch (workload.kind) {
    case WorkloadSpec::Kind::kPaper:
      return trace::all_combos();
    case WorkloadSpec::Kind::kClass:
      return trace::combos_in_class(workload.combo_class);
    case WorkloadSpec::Kind::kPattern:
      return trace::generate_mix_combos(workload.pattern, num_cores,
                                        workload.variants);
    case WorkloadSpec::Kind::kBenchList:
      return {trace::custom_combo(workload.benchmarks)};
    case WorkloadSpec::Kind::kExplicit:
      return workload.combos;
  }
  SNUG_ENSURE(false);
  return {};
}

std::string ScenarioSpec::spec_string() const {
  std::string out = strf(
      "name=%s cores=%u l1-kb=%u l1-assoc=%u l2-kb=%u l2-assoc=%u "
      "line-bytes=%u bus-bytes=%u bus-ratio=%u dram-latency=%llu "
      "workload=%s",
      name.c_str(), num_cores, l1_kb, l1_assoc, l2_slice_kb, l2_assoc,
      line_bytes, bus_width_bytes, bus_speed_ratio,
      static_cast<unsigned long long>(dram_latency),
      workload_value_string(workload).c_str());
  // Emitted only when set: default (exact) spec strings stay identical
  // to their pre-knob form.
  if (monitor_sample != 1) {
    out += strf(" monitor-sample=%u", monitor_sample);
  }
  if (scale.lanes != 1) {
    out += strf(" lanes=%u", scale.lanes);
  }
  if (workload.kind == WorkloadSpec::Kind::kPattern) {
    out += strf(" variants=%u", workload.variants);
  }
  if (scale.warmup_mode == WarmupMode::kFunctional) {
    out += " warmup-mode=functional";
  }
  out += strf(" warmup-cycles=%llu measure-cycles=%llu phase-refs=%llu",
              static_cast<unsigned long long>(scale.warmup_cycles),
              static_cast<unsigned long long>(scale.measure_cycles),
              static_cast<unsigned long long>(scale.phase_period_refs));
  return out;
}

std::string ScenarioSpec::summary() const {
  const std::size_t n_combos = combos().size();
  return strf("%s: %u x %uKB/%uw private L2 (shared %uKB), L1 %uKB/%uw, "
              "%zu combo(s) [%s]",
              name.c_str(), num_cores, l2_slice_kb, l2_assoc,
              l2_slice_kb * num_cores, l1_kb, l1_assoc, n_combos,
              workload_value_string(workload).c_str());
}

ScenarioSpec ScenarioSpec::paper() {
  ScenarioSpec spec;
  spec.scale = default_run_scale();  // honours SNUG_FULL_SCALE
  return spec;
}

ScenarioSpec ScenarioSpec::with_combos(
    std::vector<trace::WorkloadCombo> combos) {
  ScenarioSpec spec = paper();
  spec.workload.kind = WorkloadSpec::Kind::kExplicit;
  spec.workload.combos = std::move(combos);
  return spec;
}

bool parse_scenario(const std::string& text, const ScenarioSpec& base,
                    ScenarioSpec& out, std::string& error) {
  ScenarioSpec spec = base;
  for (const auto& token : tokenize(text)) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      error = "directive '" + token + "' is not key=value";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    const auto set_u32 = [&](std::uint32_t& field) {
      if (!parse_u32(value, field)) {
        error = key + " wants an unsigned integer, got '" + value + "'";
        return false;
      }
      return true;
    };
    const auto set_u64 = [&](std::uint64_t& field) {
      if (!parse_u64(value, field)) {
        error = key + " wants an unsigned integer, got '" + value + "'";
        return false;
      }
      return true;
    };

    if (key == "name") {
      spec.name = value;
    } else if (key == "cores") {
      if (!set_u32(spec.num_cores)) return false;
    } else if (key == "l1-kb") {
      if (!set_u32(spec.l1_kb)) return false;
    } else if (key == "l1-assoc") {
      if (!set_u32(spec.l1_assoc)) return false;
    } else if (key == "l2-kb") {
      if (!set_u32(spec.l2_slice_kb)) return false;
    } else if (key == "l2-assoc") {
      if (!set_u32(spec.l2_assoc)) return false;
    } else if (key == "line-bytes") {
      if (!set_u32(spec.line_bytes)) return false;
    } else if (key == "bus-bytes") {
      if (!set_u32(spec.bus_width_bytes)) return false;
    } else if (key == "bus-ratio") {
      if (!set_u32(spec.bus_speed_ratio)) return false;
    } else if (key == "dram-latency") {
      if (!set_u64(spec.dram_latency)) return false;
    } else if (key == "monitor-sample") {
      if (!set_u32(spec.monitor_sample)) return false;
    } else if (key == "lanes") {
      if (!set_u32(spec.scale.lanes)) return false;
    } else if (key == "workload") {
      // Directives are order free: a variants= seen before workload=
      // must survive the workload reset.
      const std::uint32_t variants = spec.workload.variants;
      if (!parse_workload_value(value, spec.workload, error)) return false;
      spec.workload.variants = variants;
    } else if (key == "variants") {
      if (!set_u32(spec.workload.variants)) return false;
      if (spec.workload.variants == 0) {
        error = "variants must be >= 1";
        return false;
      }
    } else if (key == "warmup-mode") {
      if (value == "timing") {
        spec.scale.warmup_mode = WarmupMode::kTiming;
      } else if (value == "functional") {
        spec.scale.warmup_mode = WarmupMode::kFunctional;
      } else {
        error = "warmup-mode must be 'timing' or 'functional', got '" +
                value + "'";
        return false;
      }
    } else if (key == "warmup-cycles") {
      if (!set_u64(spec.scale.warmup_cycles)) return false;
    } else if (key == "measure-cycles") {
      if (!set_u64(spec.scale.measure_cycles)) return false;
    } else if (key == "phase-refs") {
      if (!set_u64(spec.scale.phase_period_refs)) return false;
    } else {
      error = "unknown scenario key '" + key +
              "' (see the grammar in sim/scenario.hpp)";
      return false;
    }
  }
  const std::string invalid = spec.validate();
  if (!invalid.empty()) {
    error = invalid;
    return false;
  }
  out = std::move(spec);
  return true;
}

bool parse_scenario(const std::string& text, ScenarioSpec& out,
                    std::string& error) {
  return parse_scenario(text, ScenarioSpec::paper(), out, error);
}

bool parse_scenario_file(const std::string& path, ScenarioSpec& out,
                         std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open scenario file '" + path + "'";
    return false;
  }
  std::string joined;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    joined += line;
    joined += '\n';
  }
  if (!parse_scenario(joined, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

std::uint64_t scenario_fingerprint(const ScenarioSpec& spec) {
  std::string tag = "scenario|" + workload_value_string(spec.workload);
  for (const auto& combo : spec.combos()) {
    tag += '|';
    tag += combo.name;
    for (const auto& b : combo.benchmarks) {
      tag += '+';
      tag += b;
    }
  }
  return Rng::derive_seed(
      tag, config_fingerprint(spec.system_config(), spec.scale));
}

}  // namespace snug::sim
