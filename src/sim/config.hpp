// System configuration (paper Table 4) and run scaling.
//
// Paper scale: 6 G cycles of fast-forward + 3 G cycles of detailed
// simulation, 5 M-cycle identification epochs and 100 M-cycle grouping
// epochs.  Those lengths exist to span SPEC program phases; our synthetic
// phases are stationary by construction, so the default scale divides the
// epochs by 64 and runs windows of a few million cycles — every scheme
// sees identical streams, so relative orderings are preserved.  Set
// SNUG_FULL_SCALE=1 (or use --full-scale in the benches) for paper-scale
// epochs and proportionally longer windows.
#pragma once

#include <cstdint>

#include "bus/snoop_bus.hpp"
#include "cache/geometry.hpp"
#include "cpu/core.hpp"
#include "dram/dram.hpp"
#include "schemes/factory.hpp"
#include "trace/workloads.hpp"

namespace snug::sim {

struct SystemConfig {
  std::uint32_t num_cores = 4;
  cpu::CoreConfig core;                      ///< 8-wide, ROB 128, LSQ 64
  cache::CacheGeometry l1i{32 << 10, 4, 64}; ///< 32 KB 4-way
  cache::CacheGeometry l1d{32 << 10, 4, 64};
  schemes::SchemeBuildContext scheme_ctx;    ///< L2 slices / shared L2
  bus::BusConfig bus;                        ///< 16 B, 4:1, 1-cycle arb
  dram::DramConfig dram;                     ///< 300-cycle latency
};

/// How the warm-up phase is driven (scenario knob `warmup-mode=`).
enum class WarmupMode : std::uint8_t {
  /// Full-timing warm-up: the same event-skipping loop as measurement
  /// (bus arbitration, DRAM slots, WBB drains, ROB occupancy).
  kTiming,
  /// Functional fast-forward: cache contents and scheme epoch state are
  /// driven, all timing machinery is skipped
  /// (CmpSystem::warm_functional); the run switches to full timing at
  /// the measurement boundary.  Post-warm-up state is closed and
  /// serializable, which is what enables the warm-state bank.
  kFunctional,
};

struct RunScale {
  /// The first G/T harvest happens on a cold cache (compulsory misses
  /// only) and classifies almost everything as giver; warm-up must reach
  /// past the *second* harvest (identify + group + identify at default
  /// epochs) so measurement sees steady-state grouping — the equivalent
  /// of the paper's 6 G-cycle fast-forward.
  Cycle warmup_cycles = 9'000'000;
  /// One full SNUG period (group + identify) at default epochs.
  Cycle measure_cycles = 7'500'000;
  std::uint64_t phase_period_refs = 80'000;
  WarmupMode warmup_mode = WarmupMode::kTiming;
  /// Lane width for the lane-parallel campaign engine (scenario knob
  /// `lanes=`, accepted widths {1, 2, 4, 8}).  1 (default) is the scalar
  /// engine and keeps fingerprints — and therefore eval-cache entries
  /// and the golden figure hashes — unchanged; W > 1 packs W campaign
  /// points per worker through the masked stepping path
  /// (sim/lane_engine.hpp).  Lane results are bit-identical to scalar
  /// runs, but the fingerprint still covers non-default widths so a
  /// regression in that guarantee can never silently poison a shared
  /// cache.
  std::uint32_t lanes = 1;

  /// Multiplies every time-like length by `factor` (used for
  /// --full-scale); the lane width is not a length and is untouched.
  void scale_by(std::uint64_t factor);
};

/// Table 4 configuration with default-scale SNUG epochs.
[[nodiscard]] SystemConfig paper_system_config();

/// Default run scale; honours SNUG_FULL_SCALE=1 in the environment.
[[nodiscard]] RunScale default_run_scale();

/// A compact fingerprint of (config, scale) for the results cache.
[[nodiscard]] std::uint64_t config_fingerprint(const SystemConfig& cfg,
                                               const RunScale& scale);

}  // namespace snug::sim
