#include "sim/journal.hpp"

#include <unistd.h>

#include <cstring>

#include "common/crc32.hpp"
#include "common/str.hpp"
#include "sim/store_recovery.hpp"

namespace snug::sim {
namespace {

struct JournalHeader {
  std::uint32_t magic = CampaignJournal::kMagic;
  std::uint32_t version = CampaignJournal::kVersion;
  std::uint64_t campaign_fp = 0;
};
static_assert(sizeof(JournalHeader) == 16, "header layout must be packed");

}  // namespace

CampaignJournal::CampaignJournal(std::string path,
                                 std::uint64_t campaign_fingerprint)
    : env_(&fault::env()),
      path_(std::move(path)),
      campaign_fp_(campaign_fingerprint) {
  if (path_.empty()) return;
  // Dead writers' `.stale.<pid>` siblings (foreign journals a prior
  // open moved aside) have served their purpose; reap them like
  // orphaned temps so a long-lived journal directory stays bounded.
  stale_reaped_ = reap_stale_journals(*env_, path_);

  std::vector<std::byte> raw;
  if (!env_->read_file(path_, raw) || raw.empty()) {
    start_fresh();
    return;
  }

  JournalHeader hdr;
  const bool header_ok = raw.size() >= sizeof hdr &&
                         (std::memcpy(&hdr, raw.data(), sizeof hdr), true) &&
                         hdr.magic == kMagic && hdr.version == kVersion &&
                         hdr.campaign_fp == campaign_fp_;
  if (!header_ok) {
    // Another campaign's (or era's) journal: move it aside — its
    // progress is not ours to destroy — and start fresh.
    reset_stale_ = true;
    env_->rename(path_, strf("%s.stale.%ld", path_.c_str(),
                             static_cast<long>(::getpid())));
    start_fresh();
    return;
  }

  // Replay the valid record prefix; the first frame that fails any
  // check — short, implausible length, CRC mismatch, inconsistent
  // count — is a torn tail (a killed appender) and everything from it
  // on is discarded.
  std::size_t off = sizeof hdr;
  std::size_t valid_end = off;
  while (off + 8 <= raw.size()) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, raw.data() + off, 4);
    std::memcpy(&crc, raw.data() + off + 4, 4);
    if (len < 12 || len > 12 + std::size_t{kMaxIpc} * 8 ||
        off + 8 + len > raw.size()) {
      break;
    }
    const std::byte* payload = raw.data() + off + 8;
    if (crc32c(payload, len) != crc) break;
    std::uint64_t fp = 0;
    std::uint32_t count = 0;
    std::memcpy(&fp, payload, 8);
    std::memcpy(&count, payload + 8, 4);
    if (count == 0 || count > kMaxIpc || len != 12 + count * 8) break;
    std::vector<double> ipc(count);
    std::memcpy(ipc.data(), payload + 12, count * 8);
    records_[fp] = std::move(ipc);
    off += 8 + len;
    valid_end = off;
  }

  image_.assign(raw.begin(), raw.begin() + valid_end);
  if (valid_end != raw.size()) {
    // Atomically rewrite without the torn tail, via the same
    // temp-then-rename discipline as the stores.
    discarded_tail_bytes_ = raw.size() - valid_end;
    const std::string tmp =
        strf("%s.tmp.%ld.0", path_.c_str(), static_cast<long>(::getpid()));
    if (env_->write_file(tmp, raw.data(), valid_end) &&
        env_->rename(tmp, path_)) {
      return;
    }
    env_->remove(tmp);
    // Rewrite failed: appending after a torn tail would bury good
    // frames behind a bad one (replay stops at the first bad frame),
    // so disable appends — the already-replayed records stay usable.
    path_.clear();
  }
}

void CampaignJournal::start_fresh() {
  JournalHeader hdr;
  hdr.campaign_fp = campaign_fp_;
  std::vector<std::byte> raw(sizeof hdr);
  std::memcpy(raw.data(), &hdr, sizeof hdr);
  if (!env_->write_file(path_, raw.data(), raw.size())) {
    path_.clear();  // journalling stays best-effort
    return;
  }
  image_ = std::move(raw);
}

bool CampaignJournal::lookup(std::uint64_t run_fingerprint,
                             std::vector<double>& ipc) const {
  const auto it = records_.find(run_fingerprint);
  if (it == records_.end()) return false;
  ipc = it->second;
  return true;
}

void CampaignJournal::append(std::uint64_t run_fingerprint,
                             const std::vector<double>& ipc) {
  if (path_.empty() || ipc.empty() || ipc.size() > kMaxIpc) return;

  const std::uint32_t count = static_cast<std::uint32_t>(ipc.size());
  const std::uint32_t len = 12 + count * 8;
  std::vector<std::byte> frame(8 + len);
  std::memcpy(frame.data() + 8, &run_fingerprint, 8);
  std::memcpy(frame.data() + 16, &count, 4);
  std::memcpy(frame.data() + 20, ipc.data(), std::size_t{count} * 8);
  const std::uint32_t crc = crc32c(frame.data() + 8, len);
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, &crc, 4);

  const std::lock_guard<std::mutex> lock(append_mu_);
  if (env_->append_file(path_, frame.data(), frame.size())) {
    image_.insert(image_.end(), frame.begin(), frame.end());
    return;
  }
  ++append_failures_;
  // A failed append (e.g. ENOSPC) can leave a partial frame on disk,
  // and replay stops at the first bad frame — every LATER successful
  // append would be buried behind it.  Repair by atomically rewriting
  // the known-good image (header + whole frames); if even that fails,
  // disable appends rather than keep corrupting the tail.
  const std::string tmp =
      strf("%s.tmp.%ld.a%llu", path_.c_str(), static_cast<long>(::getpid()),
           static_cast<unsigned long long>(append_failures_));
  if (env_->write_file(tmp, image_.data(), image_.size()) &&
      env_->rename(tmp, path_)) {
    return;
  }
  env_->remove(tmp);
  path_.clear();
}

}  // namespace snug::sim
