// Campaign — a declarative (workload combo x scheme) experiment grid plus
// the engine that executes it, serially or fanned out across a thread
// pool (sim/executor.hpp).
//
// The grid is flattened combo-major into index-addressed tasks; every
// task's result lands in its own slot, so the assembled CampaignResults
// map is deterministic and bit-identical whether the campaign ran with
// one job or sixteen.  Aggregation hooks let callers stream per-combo
// summaries (e.g. figure rows) as combos complete instead of waiting for
// the whole grid.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

namespace snug::sim {

/// Per-combo results keyed by scheme id, e.g. "L2P", "CC(25%)", "SNUG".
using ComboResults = ExperimentRunner::ComboResults;

/// Per-combo results for a whole campaign, keyed by combo name.
using CampaignResults = std::map<std::string, ComboResults>;

/// A declarative experiment grid: one scenario (topology + scale +
/// workload) crossed with a scheme list — every combo the scenario
/// expands to runs under every scheme.
struct CampaignSpec {
  ScenarioSpec scenario;
  std::vector<schemes::SchemeSpec> schemes;

  /// The scenario's combos, expanded to its core count (deterministic).
  [[nodiscard]] std::vector<trace::WorkloadCombo> combos() const {
    return scenario.combos();
  }

  [[nodiscard]] std::size_t size() const {
    return combos().size() * schemes.size();
  }

  /// The paper's evaluation campaign: all 21 Table-8 combos under the
  /// full 9-scheme grid (Figs. 9-11) on the Table 4 quad-core machine.
  [[nodiscard]] static CampaignSpec paper();

  /// One combo under the full paper scheme grid.
  [[nodiscard]] static CampaignSpec single(trace::WorkloadCombo combo);

  /// An explicit combo list on the paper machine (tests, ad-hoc grids).
  [[nodiscard]] static CampaignSpec grid(
      std::vector<trace::WorkloadCombo> combos,
      std::vector<schemes::SchemeSpec> schemes);
};

/// Human-readable listings for the --list-schemes / --list-combos /
/// --dry-run bench flags.
[[nodiscard]] std::string describe_schemes(
    const std::vector<schemes::SchemeSpec>& schemes);
[[nodiscard]] std::string describe_combos(
    const std::vector<trace::WorkloadCombo>& combos);
/// The fully expanded scenario x scheme grid, one line per task.
[[nodiscard]] std::string describe_grid(const CampaignSpec& spec);

/// One progress tick, emitted after each (combo, scheme) task finishes.
struct CampaignProgress {
  std::size_t done = 0;   ///< tasks finished so far, including this one
  std::size_t total = 0;  ///< spec.size()
  std::string combo;
  std::string scheme;
  bool cached = false;    ///< served from the eval cache, no simulation
  bool replayed = false;  ///< served from the campaign journal (resume)
};

/// Retry discipline for transiently failing cells: a task throwing
/// fault::TransientError is re-attempted up to `max_attempts` times
/// total, sleeping backoff_ms, 2*backoff_ms, 4*backoff_ms, ... between
/// attempts (deterministic — no jitter, so faulty runs replay exactly).
/// Anything else thrown propagates immediately.
struct RetryPolicy {
  unsigned max_attempts = 3;
  std::uint64_t backoff_ms = 10;
};

class CampaignEngine {
 public:
  /// Robustness counters for one run() call (bench summary lines).
  struct Stats {
    std::uint64_t replayed = 0;  ///< cells served from the journal
    std::uint64_t retries = 0;   ///< transient-failure re-attempts
    std::uint64_t journal_discarded_bytes = 0;  ///< torn tail at open
    std::uint64_t journal_append_failures = 0;
    /// Dead writers' `.stale.<pid>` journal siblings reaped at open.
    std::uint64_t journal_stale_reaped = 0;
    std::uint64_t watchdog_flags = 0;  ///< stuck-worker flags this run
    bool journal_reset_stale = false;  ///< foreign journal moved aside
  };

  /// `jobs` as in resolve_jobs(): 1 = serial on the calling thread,
  /// 0 = one worker per hardware thread, n = exactly n workers.
  explicit CampaignEngine(ExperimentRunner& runner, unsigned jobs = 1);

  /// Checkpoint/resume: when non-empty, completed cells are journalled
  /// to this file and a resumed run replays them instead of
  /// re-simulating (sim/journal.hpp).  Set before run().
  std::string journal_path;

  /// Transient-failure retry discipline (see RetryPolicy).
  RetryPolicy retry;

  /// Wedged-worker watchdog deadline forwarded to the executor; 0
  /// disables (see ParallelExecutor::watchdog_ms).
  void set_watchdog_ms(std::uint64_t ms) noexcept {
    exec_.watchdog_ms = ms;
  }

  /// Counters of the most recent run().
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Progress hook; invocations are serialised, so the callback does not
  /// need its own locking.  Completion order is nondeterministic under
  /// parallel execution — only the final results map is ordered.
  std::function<void(const CampaignProgress&)> on_progress;

  /// Aggregation hook, fired once per combo when its last scheme finishes
  /// (serialised like on_progress).  Lets figure assembly / CSV streaming
  /// start while the rest of the grid is still simulating.
  std::function<void(const trace::WorkloadCombo&, const ComboResults&)>
      on_combo_done;

  /// Executes the grid and returns results keyed by combo name.  Every
  /// entry is bit-identical to what a serial run would produce.  The
  /// spec's scenario must describe the same machine the runner was
  /// built from (checked by fingerprint).
  [[nodiscard]] CampaignResults run(const CampaignSpec& spec);

  [[nodiscard]] unsigned jobs() const noexcept { return exec_.jobs(); }

 private:
  ExperimentRunner& runner_;
  ParallelExecutor exec_;
  Stats stats_;
};

}  // namespace snug::sim
