#include "sim/runner.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/crc32.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "sim/lane_engine.hpp"
#include "sim/store_recovery.hpp"

namespace snug::sim {
namespace {

// Entry files are host-endian; the magic word doubles as an endianness
// check because a byte-swapped header can never match.
struct CacheHeader {
  std::uint32_t magic = EvalCache::kMagic;
  std::uint32_t version = EvalCache::kVersion;
  std::uint64_t fingerprint = 0;
  std::uint32_t count = 0;
  std::uint32_t payload_crc = 0;  ///< CRC-32C of the f64 payload (v4+)
};
static_assert(sizeof(CacheHeader) == 24, "header layout must be packed");

}  // namespace

double RunResult::throughput() const {
  double sum = 0.0;
  for (const double v : ipc) sum += v;
  return sum;
}

EvalCache::EvalCache(std::string dir)
    : env_(&fault::env()), dir_(std::move(dir)) {
  if (!dir_.empty()) {
    if (!env_->create_directories(dir_)) {
      dir_.clear();  // fall back to uncached operation
      return;
    }
    reaped_temps_.store(reap_orphaned_temps(*env_, dir_),
                        std::memory_order_relaxed);
    quarantine_trimmed_.store(bound_quarantine(*env_, dir_),
                              std::memory_order_relaxed);
  }
}

std::string EvalCache::entry_path(const std::string& key) const {
  return dir_ + "/" + key + ".snugc";
}

bool EvalCache::load(const std::string& key, std::uint64_t fingerprint,
                     std::vector<double>& ipc) const {
  if (dir_.empty()) return false;
  std::vector<std::byte> raw;
  if (!env_->read_file(entry_path(key), raw)) return false;

  // Structural damage — a file that can never be a valid entry of any
  // version — is quarantined; *stale* entries (wrong version or
  // fingerprint: valid files answering a different question) stay put.
  const auto corrupt = [&] {
    if (quarantine_entry(
            *env_, dir_, key + ".snugc",
            store_seq_.fetch_add(1, std::memory_order_relaxed))) {
      quarantined_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  };

  if (raw.size() < sizeof(CacheHeader)) return corrupt();
  CacheHeader hdr;
  std::memcpy(&hdr, raw.data(), sizeof hdr);
  if (hdr.magic != kMagic) return corrupt();
  if (hdr.version != kVersion || hdr.fingerprint != fingerprint) {
    return false;  // stale, not corrupt
  }
  if (hdr.count == 0 || hdr.count > kMaxEntries) return corrupt();
  const std::size_t payload_bytes = hdr.count * sizeof(double);
  if (raw.size() != sizeof hdr + payload_bytes) {
    return corrupt();  // truncated (short write) or trailing garbage
  }
  if (crc32c(raw.data() + sizeof hdr, payload_bytes) != hdr.payload_crc) {
    return corrupt();  // bit rot / torn payload
  }

  ipc.resize(hdr.count);
  std::memcpy(ipc.data(), raw.data() + sizeof hdr, payload_bytes);
  return true;
}

bool EvalCache::contains(const std::string& key,
                         std::uint64_t fingerprint) const {
  if (dir_.empty()) return false;
  std::vector<std::byte> raw;
  if (!env_->read_file(entry_path(key), raw, sizeof(CacheHeader))) {
    return false;
  }
  if (raw.size() < sizeof(CacheHeader)) return false;
  CacheHeader hdr;
  std::memcpy(&hdr, raw.data(), sizeof hdr);
  // Header-only probe: no CRC/size verdict and no quarantine — a later
  // full load makes the structural call (same contract as
  // WarmStateBank::contains).
  return hdr.magic == kMagic && hdr.version == kVersion &&
         hdr.fingerprint == fingerprint && hdr.count > 0 &&
         hdr.count <= kMaxEntries;
}

std::size_t EvalCache::refresh() const {
  if (dir_.empty()) return 0;
  const std::lock_guard<std::mutex> lock(refresh_mu_);
  // Epoch short-circuit: every publish renames into the directory and
  // perturbs its (mtime_ns, size) signature, so an unchanged-and-settled
  // signature means the last count is still exact — no listing needed
  // (racy-mtime rule: common/fsepoch.hpp).
  const DirEpoch now = dir_epoch(dir_);
  if (refresh_primed_ && epoch_unchanged(now, refresh_epoch_)) {
    return refresh_count_;
  }
  std::size_t published = 0;
  for (const std::string& name : env_->list_dir(dir_)) {
    // Count only published entries: temps are in-flight stores and
    // anything else (journals, notes) is not ours to report.
    if (name.size() > 6 && name.rfind(".snugc") == name.size() - 6) {
      ++published;
    }
  }
  refresh_primed_ = true;
  refresh_epoch_ = now;
  refresh_count_ = published;
  return published;
}

void EvalCache::store(const std::string& key, std::uint64_t fingerprint,
                      const std::vector<double>& ipc) const {
  if (dir_.empty() || ipc.empty() || ipc.size() > kMaxEntries) return;

  CacheHeader hdr;
  hdr.fingerprint = fingerprint;
  hdr.count = static_cast<std::uint32_t>(ipc.size());
  hdr.payload_crc = crc32c(ipc.data(), ipc.size() * sizeof(double));
  std::vector<std::byte> raw(sizeof hdr + ipc.size() * sizeof(double));
  std::memcpy(raw.data(), &hdr, sizeof hdr);
  std::memcpy(raw.data() + sizeof hdr, ipc.data(),
              ipc.size() * sizeof(double));

  // Unique temp name per (process, store) so concurrent writers — threads
  // of this process or entirely separate processes — never collide; the
  // final rename is atomic within the cache directory.
  const std::string tmp =
      strf("%s/%s.tmp.%ld.%llu", dir_.c_str(), key.c_str(),
           static_cast<long>(::getpid()),
           static_cast<unsigned long long>(
               store_seq_.fetch_add(1, std::memory_order_relaxed)));
  if (!env_->write_file(tmp, raw.data(), raw.size())) {
    env_->remove(tmp);  // ENOSPC-style partial file: clean up
    return;
  }
  if (!env_->rename(tmp, entry_path(key))) {
    env_->remove(tmp);  // cache stays best-effort
  }
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("SNUG_CACHE_DIR")) return env;
  return ".snug_eval_cache";
}

std::uint64_t run_fingerprint(const SystemConfig& cfg, const RunScale& scale,
                              const trace::WorkloadCombo& combo,
                              const schemes::SchemeSpec& spec) {
  std::string tag = combo.name;
  for (const auto& bench : combo.benchmarks) {
    tag += '|';
    tag += bench;
  }
  tag += '|';
  tag += spec.id();
  return Rng::derive_seed(tag, config_fingerprint(cfg, scale),
                          EvalCache::kVersion);
}

ExperimentRunner::ExperimentRunner(const SystemConfig& cfg,
                                   const RunScale& scale,
                                   std::string cache_dir,
                                   std::string warm_bank_dir)
    : cfg_(cfg),
      scale_(scale),
      cache_(std::move(cache_dir)),
      warm_bank_(scale.warmup_mode == WarmupMode::kFunctional
                     ? std::move(warm_bank_dir)
                     : std::string()) {}

ExperimentRunner::ExperimentRunner(const ScenarioSpec& scenario,
                                   std::string cache_dir,
                                   std::string warm_bank_dir)
    : ExperimentRunner(scenario.system_config(), scenario.scale,
                       std::move(cache_dir), std::move(warm_bank_dir)) {}

std::string ExperimentRunner::cache_key(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  return cache_key(combo, spec, run_fingerprint(cfg_, scale_, combo, spec));
}

std::string ExperimentRunner::cache_key(const trace::WorkloadCombo& combo,
                                        const schemes::SchemeSpec& spec,
                                        std::uint64_t fingerprint) const {
  return strf("%s__%s__%016llx", combo.name.c_str(), spec.id().c_str(),
              static_cast<unsigned long long>(fingerprint));
}

std::string ExperimentRunner::warm_key(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  return warm_key(combo, spec, warm_fingerprint(cfg_, scale_, combo, spec));
}

std::string ExperimentRunner::warm_key(const trace::WorkloadCombo& combo,
                                       const schemes::SchemeSpec& spec,
                                       std::uint64_t fingerprint) const {
  return strf("warm__%s__%s__%016llx", combo.name.c_str(),
              spec.id().c_str(),
              static_cast<unsigned long long>(fingerprint));
}

bool ExperimentRunner::warm_state_banked(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  if (scale_.warmup_mode != WarmupMode::kFunctional ||
      !warm_bank_.enabled()) {
    return false;
  }
  const std::uint64_t wfp = warm_fingerprint(cfg_, scale_, combo, spec);
  return warm_bank_.contains(warm_key(combo, spec, wfp), wfp);
}

RunResult ExperimentRunner::run(const trace::WorkloadCombo& combo,
                                const schemes::SchemeSpec& spec) {
  const std::uint64_t fp = run_fingerprint(cfg_, scale_, combo, spec);
  const std::string key = cache_key(combo, spec, fp);
  RunResult result;
  if (cache_.load(key, fp, result.ipc)) {
    result.cached = true;
    if (on_progress) {
      const std::lock_guard<std::mutex> lock(progress_mu_);
      on_progress(combo.name, spec.id(), true);
    }
    return result;
  }
  if (on_progress) {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    on_progress(combo.name, spec.id(), false);
  }
  // Transient-fault point for the simulation cell itself (fail@task /
  // stall@task clauses); the campaign engine's backoff loop retries.
  fault::maybe_fail_task(combo.name + "/" + spec.id());

  CmpSystem system(cfg_, spec, combo, scale_);
  if (scale_.warmup_mode == WarmupMode::kFunctional) {
    // Functional fast-forward, with the warm-up prefix banked: the first
    // point of a (scenario, workload, warmup, scheme) prefix pays the
    // functional warm-up and serializes the result; every later point
    // sharing the prefix (e.g. differing only in measurement length)
    // restores it.  Restore + measure is bit-identical to warm + measure
    // (tests/sim/warm_state_test.cpp), so the two paths are
    // interchangeable.
    const std::uint64_t wfp = warm_fingerprint(cfg_, scale_, combo, spec);
    const std::string wkey = warm_key(combo, spec, wfp);
    std::vector<std::byte> blob;
    if (warm_bank_.load(wkey, wfp, blob)) {
      system.load_warm_state(blob);
      result.warm_banked = true;
    } else {
      system.warm_functional(scale_.warmup_cycles);
      warm_bank_.store(wkey, wfp, system.save_warm_state());
    }
  } else {
    system.run(scale_.warmup_cycles);
  }
  system.begin_measurement();
  system.run(scale_.measure_cycles);
  result.ipc = system.measured_ipc();
  for (const double v : result.ipc) SNUG_ENSURE(v > 0.0);

  cache_.store(key, fp, result.ipc);
  return result;
}

std::vector<RunResult> ExperimentRunner::run_group(
    const std::vector<GroupPoint>& points) {
  SNUG_REQUIRE(!points.empty());
  std::vector<RunResult> results(points.size());
  if (points.size() == 1) {
    results[0] = run(points[0].combo, points[0].spec);
    return results;
  }

  // Serve cache-resident points first; only misses become lanes.
  std::vector<std::size_t> live;
  std::vector<std::uint64_t> fps(points.size());
  std::vector<std::string> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    fps[i] = run_fingerprint(cfg_, scale_, points[i].combo, points[i].spec);
    keys[i] = cache_key(points[i].combo, points[i].spec, fps[i]);
    if (cache_.load(keys[i], fps[i], results[i].ipc)) {
      results[i].cached = true;
    } else {
      live.push_back(i);
    }
    if (on_progress) {
      const std::lock_guard<std::mutex> lock(progress_mu_);
      on_progress(points[i].combo.name, points[i].spec.id(),
                  results[i].cached);
    }
  }
  if (live.empty()) return results;
  for (const std::size_t i : live) {
    fault::maybe_fail_task(points[i].combo.name + "/" +
                           points[i].spec.id());
  }

  // Build the surviving points as lanes.  A group shrunk to one live
  // lane still goes through the (width-1) lane path: step_masked is
  // bit-identical to step, so the result cannot differ — only the
  // scheduling bookkeeping would.
  LaneGroup group;
  for (const std::size_t i : live) {
    group.add_lane(std::make_unique<CmpSystem>(cfg_, points[i].spec,
                                               points[i].combo, scale_));
  }

  // Warm-up: the functional path is inherently per-lane (bank probe,
  // fast-forward, bank store — same sequence as run()); the timing path
  // warms the whole group through the lane engine.
  if (scale_.warmup_mode == WarmupMode::kFunctional) {
    for (std::size_t l = 0; l < live.size(); ++l) {
      const GroupPoint& pt = points[live[l]];
      const std::uint64_t wfp =
          warm_fingerprint(cfg_, scale_, pt.combo, pt.spec);
      const std::string wkey = warm_key(pt.combo, pt.spec, wfp);
      std::vector<std::byte> blob;
      if (warm_bank_.load(wkey, wfp, blob)) {
        group.lane(l).load_warm_state(blob);
        results[live[l]].warm_banked = true;
      } else {
        group.lane(l).warm_functional(scale_.warmup_cycles);
        warm_bank_.store(wkey, wfp, group.lane(l).save_warm_state());
      }
    }
  } else {
    group.run(scale_.warmup_cycles);
  }

  for (std::size_t l = 0; l < live.size(); ++l) {
    group.lane(l).begin_measurement();
  }
  group.run(scale_.measure_cycles);
  for (std::size_t l = 0; l < live.size(); ++l) {
    const std::size_t i = live[l];
    results[i].ipc = group.lane(l).measured_ipc();
    for (const double v : results[i].ipc) SNUG_ENSURE(v > 0.0);
    cache_.store(keys[i], fps[i], results[i].ipc);
  }
  return results;
}

void ExperimentRunner::seed_cache(const trace::WorkloadCombo& combo,
                                  const schemes::SchemeSpec& spec,
                                  const std::vector<double>& ipc) {
  const std::uint64_t fp = run_fingerprint(cfg_, scale_, combo, spec);
  cache_.store(cache_key(combo, spec, fp), fp, ipc);
}

bool ExperimentRunner::cached_ipc(const trace::WorkloadCombo& combo,
                                  const schemes::SchemeSpec& spec,
                                  std::vector<double>& ipc) const {
  const std::uint64_t fp = run_fingerprint(cfg_, scale_, combo, spec);
  return cache_.load(cache_key(combo, spec, fp), fp, ipc);
}

ExperimentRunner::ComboResults ExperimentRunner::run_combo_grid(
    const trace::WorkloadCombo& combo) {
  ComboResults out;
  for (const auto& spec : schemes::paper_scheme_grid()) {
    out[spec.id()] = run(combo, spec);
  }
  return out;
}

}  // namespace snug::sim
