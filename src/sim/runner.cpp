#include "sim/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"

namespace snug::sim {

double RunResult::throughput() const {
  double sum = 0.0;
  for (const double v : ipc) sum += v;
  return sum;
}

EvalCache::EvalCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) dir_.clear();  // fall back to uncached operation
  }
}

bool EvalCache::load(const std::string& key,
                     std::vector<double>& ipc) const {
  if (dir_.empty()) return false;
  std::ifstream in(dir_ + "/" + key + ".txt");
  if (!in) return false;
  ipc.clear();
  double v = 0.0;
  while (in >> v) ipc.push_back(v);
  return !ipc.empty();
}

void EvalCache::store(const std::string& key,
                      const std::vector<double>& ipc) const {
  if (dir_.empty()) return;
  std::ofstream out(dir_ + "/" + key + ".txt");
  for (const double v : ipc) out << strf("%.9f\n", v);
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("SNUG_CACHE_DIR")) return env;
  return ".snug_eval_cache";
}

ExperimentRunner::ExperimentRunner(const SystemConfig& cfg,
                                   const RunScale& scale,
                                   std::string cache_dir)
    : cfg_(cfg), scale_(scale), cache_(std::move(cache_dir)) {}

std::string ExperimentRunner::cache_key(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  const std::uint64_t fp = config_fingerprint(cfg_, scale_);
  return strf("%s__%s__%016llx", combo.name.c_str(), spec.id().c_str(),
              static_cast<unsigned long long>(fp));
}

RunResult ExperimentRunner::run(const trace::WorkloadCombo& combo,
                                const schemes::SchemeSpec& spec) {
  const std::string key = cache_key(combo, spec);
  RunResult result;
  if (cache_.load(key, result.ipc)) {
    if (on_progress) on_progress(combo.name, spec.id(), true);
    return result;
  }
  if (on_progress) on_progress(combo.name, spec.id(), false);

  CmpSystem system(cfg_, spec, combo, scale_);
  system.run(scale_.warmup_cycles);
  system.begin_measurement();
  system.run(scale_.measure_cycles);
  result.ipc = system.measured_ipc();
  for (const double v : result.ipc) SNUG_ENSURE(v > 0.0);

  cache_.store(key, result.ipc);
  return result;
}

ExperimentRunner::ComboResults ExperimentRunner::run_combo_grid(
    const trace::WorkloadCombo& combo) {
  ComboResults out;
  for (const auto& spec : schemes::paper_scheme_grid()) {
    out[spec.id()] = run(combo, spec);
  }
  return out;
}

}  // namespace snug::sim
