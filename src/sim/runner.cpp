#include "sim/runner.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "sim/lane_engine.hpp"

namespace snug::sim {
namespace {

// Entry files are host-endian; the magic word doubles as an endianness
// check because a byte-swapped header can never match.
struct CacheHeader {
  std::uint32_t magic = EvalCache::kMagic;
  std::uint32_t version = EvalCache::kVersion;
  std::uint64_t fingerprint = 0;
  std::uint32_t count = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(CacheHeader) == 24, "header layout must be packed");

}  // namespace

double RunResult::throughput() const {
  double sum = 0.0;
  for (const double v : ipc) sum += v;
  return sum;
}

EvalCache::EvalCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) dir_.clear();  // fall back to uncached operation
  }
}

std::string EvalCache::entry_path(const std::string& key) const {
  return dir_ + "/" + key + ".snugc";
}

bool EvalCache::load(const std::string& key, std::uint64_t fingerprint,
                     std::vector<double>& ipc) const {
  if (dir_.empty()) return false;
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in) return false;

  CacheHeader hdr;
  in.read(reinterpret_cast<char*>(&hdr), sizeof hdr);
  if (!in || in.gcount() != sizeof hdr) return false;
  if (hdr.magic != kMagic || hdr.version != kVersion ||
      hdr.fingerprint != fingerprint || hdr.reserved != 0) {
    return false;
  }
  if (hdr.count == 0 || hdr.count > kMaxEntries) return false;

  std::vector<double> payload(hdr.count);
  const std::streamsize bytes =
      static_cast<std::streamsize>(hdr.count * sizeof(double));
  in.read(reinterpret_cast<char*>(payload.data()), bytes);
  if (!in || in.gcount() != bytes) return false;  // truncated entry
  if (in.peek() != std::ifstream::traits_type::eof()) return false;  // long

  ipc = std::move(payload);
  return true;
}

void EvalCache::store(const std::string& key, std::uint64_t fingerprint,
                      const std::vector<double>& ipc) const {
  if (dir_.empty() || ipc.empty() || ipc.size() > kMaxEntries) return;

  // Unique temp name per (process, store) so concurrent writers — threads
  // of this process or entirely separate processes — never collide; the
  // final rename is atomic within the cache directory.
  const std::string tmp =
      strf("%s/%s.tmp.%ld.%llu", dir_.c_str(), key.c_str(),
           static_cast<long>(::getpid()),
           static_cast<unsigned long long>(
               store_seq_.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    CacheHeader hdr;
    hdr.fingerprint = fingerprint;
    hdr.count = static_cast<std::uint32_t>(ipc.size());
    out.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
    out.write(reinterpret_cast<const char*>(ipc.data()),
              static_cast<std::streamsize>(ipc.size() * sizeof(double)));
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, entry_path(key), ec);
  if (ec) std::filesystem::remove(tmp, ec);  // cache stays best-effort
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("SNUG_CACHE_DIR")) return env;
  return ".snug_eval_cache";
}

std::uint64_t run_fingerprint(const SystemConfig& cfg, const RunScale& scale,
                              const trace::WorkloadCombo& combo,
                              const schemes::SchemeSpec& spec) {
  std::string tag = combo.name;
  for (const auto& bench : combo.benchmarks) {
    tag += '|';
    tag += bench;
  }
  tag += '|';
  tag += spec.id();
  return Rng::derive_seed(tag, config_fingerprint(cfg, scale),
                          EvalCache::kVersion);
}

ExperimentRunner::ExperimentRunner(const SystemConfig& cfg,
                                   const RunScale& scale,
                                   std::string cache_dir,
                                   std::string warm_bank_dir)
    : cfg_(cfg),
      scale_(scale),
      cache_(std::move(cache_dir)),
      warm_bank_(scale.warmup_mode == WarmupMode::kFunctional
                     ? std::move(warm_bank_dir)
                     : std::string()) {}

ExperimentRunner::ExperimentRunner(const ScenarioSpec& scenario,
                                   std::string cache_dir,
                                   std::string warm_bank_dir)
    : ExperimentRunner(scenario.system_config(), scenario.scale,
                       std::move(cache_dir), std::move(warm_bank_dir)) {}

std::string ExperimentRunner::cache_key(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  return cache_key(combo, spec, run_fingerprint(cfg_, scale_, combo, spec));
}

std::string ExperimentRunner::cache_key(const trace::WorkloadCombo& combo,
                                        const schemes::SchemeSpec& spec,
                                        std::uint64_t fingerprint) const {
  return strf("%s__%s__%016llx", combo.name.c_str(), spec.id().c_str(),
              static_cast<unsigned long long>(fingerprint));
}

std::string ExperimentRunner::warm_key(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  return warm_key(combo, spec, warm_fingerprint(cfg_, scale_, combo, spec));
}

std::string ExperimentRunner::warm_key(const trace::WorkloadCombo& combo,
                                       const schemes::SchemeSpec& spec,
                                       std::uint64_t fingerprint) const {
  return strf("warm__%s__%s__%016llx", combo.name.c_str(),
              spec.id().c_str(),
              static_cast<unsigned long long>(fingerprint));
}

bool ExperimentRunner::warm_state_banked(
    const trace::WorkloadCombo& combo,
    const schemes::SchemeSpec& spec) const {
  if (scale_.warmup_mode != WarmupMode::kFunctional ||
      !warm_bank_.enabled()) {
    return false;
  }
  const std::uint64_t wfp = warm_fingerprint(cfg_, scale_, combo, spec);
  return warm_bank_.contains(warm_key(combo, spec, wfp), wfp);
}

RunResult ExperimentRunner::run(const trace::WorkloadCombo& combo,
                                const schemes::SchemeSpec& spec) {
  const std::uint64_t fp = run_fingerprint(cfg_, scale_, combo, spec);
  const std::string key = cache_key(combo, spec, fp);
  RunResult result;
  if (cache_.load(key, fp, result.ipc)) {
    result.cached = true;
    if (on_progress) {
      const std::lock_guard<std::mutex> lock(progress_mu_);
      on_progress(combo.name, spec.id(), true);
    }
    return result;
  }
  if (on_progress) {
    const std::lock_guard<std::mutex> lock(progress_mu_);
    on_progress(combo.name, spec.id(), false);
  }

  CmpSystem system(cfg_, spec, combo, scale_);
  if (scale_.warmup_mode == WarmupMode::kFunctional) {
    // Functional fast-forward, with the warm-up prefix banked: the first
    // point of a (scenario, workload, warmup, scheme) prefix pays the
    // functional warm-up and serializes the result; every later point
    // sharing the prefix (e.g. differing only in measurement length)
    // restores it.  Restore + measure is bit-identical to warm + measure
    // (tests/sim/warm_state_test.cpp), so the two paths are
    // interchangeable.
    const std::uint64_t wfp = warm_fingerprint(cfg_, scale_, combo, spec);
    const std::string wkey = warm_key(combo, spec, wfp);
    std::vector<std::byte> blob;
    if (warm_bank_.load(wkey, wfp, blob)) {
      system.load_warm_state(blob);
      result.warm_banked = true;
    } else {
      system.warm_functional(scale_.warmup_cycles);
      warm_bank_.store(wkey, wfp, system.save_warm_state());
    }
  } else {
    system.run(scale_.warmup_cycles);
  }
  system.begin_measurement();
  system.run(scale_.measure_cycles);
  result.ipc = system.measured_ipc();
  for (const double v : result.ipc) SNUG_ENSURE(v > 0.0);

  cache_.store(key, fp, result.ipc);
  return result;
}

std::vector<RunResult> ExperimentRunner::run_group(
    const std::vector<GroupPoint>& points) {
  SNUG_REQUIRE(!points.empty());
  std::vector<RunResult> results(points.size());
  if (points.size() == 1) {
    results[0] = run(points[0].combo, points[0].spec);
    return results;
  }

  // Serve cache-resident points first; only misses become lanes.
  std::vector<std::size_t> live;
  std::vector<std::uint64_t> fps(points.size());
  std::vector<std::string> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    fps[i] = run_fingerprint(cfg_, scale_, points[i].combo, points[i].spec);
    keys[i] = cache_key(points[i].combo, points[i].spec, fps[i]);
    if (cache_.load(keys[i], fps[i], results[i].ipc)) {
      results[i].cached = true;
    } else {
      live.push_back(i);
    }
    if (on_progress) {
      const std::lock_guard<std::mutex> lock(progress_mu_);
      on_progress(points[i].combo.name, points[i].spec.id(),
                  results[i].cached);
    }
  }
  if (live.empty()) return results;

  // Build the surviving points as lanes.  A group shrunk to one live
  // lane still goes through the (width-1) lane path: step_masked is
  // bit-identical to step, so the result cannot differ — only the
  // scheduling bookkeeping would.
  LaneGroup group;
  for (const std::size_t i : live) {
    group.add_lane(std::make_unique<CmpSystem>(cfg_, points[i].spec,
                                               points[i].combo, scale_));
  }

  // Warm-up: the functional path is inherently per-lane (bank probe,
  // fast-forward, bank store — same sequence as run()); the timing path
  // warms the whole group through the lane engine.
  if (scale_.warmup_mode == WarmupMode::kFunctional) {
    for (std::size_t l = 0; l < live.size(); ++l) {
      const GroupPoint& pt = points[live[l]];
      const std::uint64_t wfp =
          warm_fingerprint(cfg_, scale_, pt.combo, pt.spec);
      const std::string wkey = warm_key(pt.combo, pt.spec, wfp);
      std::vector<std::byte> blob;
      if (warm_bank_.load(wkey, wfp, blob)) {
        group.lane(l).load_warm_state(blob);
        results[live[l]].warm_banked = true;
      } else {
        group.lane(l).warm_functional(scale_.warmup_cycles);
        warm_bank_.store(wkey, wfp, group.lane(l).save_warm_state());
      }
    }
  } else {
    group.run(scale_.warmup_cycles);
  }

  for (std::size_t l = 0; l < live.size(); ++l) {
    group.lane(l).begin_measurement();
  }
  group.run(scale_.measure_cycles);
  for (std::size_t l = 0; l < live.size(); ++l) {
    const std::size_t i = live[l];
    results[i].ipc = group.lane(l).measured_ipc();
    for (const double v : results[i].ipc) SNUG_ENSURE(v > 0.0);
    cache_.store(keys[i], fps[i], results[i].ipc);
  }
  return results;
}

ExperimentRunner::ComboResults ExperimentRunner::run_combo_grid(
    const trace::WorkloadCombo& combo) {
  ComboResults out;
  for (const auto& spec : schemes::paper_scheme_grid()) {
    out[spec.id()] = run(combo, spec);
  }
  return out;
}

}  // namespace snug::sim
