// Hot-path microbenchmark — the measurement device behind the ISSUE 3
// inner-loop overhaul and the ISSUE 4 front-end overhaul.  Four tiers,
// all deterministic:
//
//   raw      — a SetAssocCache on the paper's 1 MB 16-way slice geometry,
//              driven directly: a local access/fill mix sized to ~50%
//              steady-state hit rate, and the cooperative
//              insert/lookup/forward mix.
//   frontend — a bare SyntheticStream on the paper slice geometry:
//              full instruction synthesis (`next()`, the path the core
//              model consumes) and raw L2-reference generation
//              (`next_l2_access()`, the path the characterisation
//              campaigns consume by the hundred million).
//   system   — a full CmpSystem (default: 8-core SNUG machine) driven
//              through data_access/inst_fetch on a pre-generated
//              reference trace, so the measured cost is the memory
//              hierarchy, not trace synthesis or the core pipeline.
//   run      — the same machine driven through CmpSystem::run, i.e. the
//              whole simulator end to end (core loop + trace synthesis +
//              memory hierarchy + scheme tick), reported as retired
//              instructions/second, for the --scheme machine and for an
//              L2P machine (no periodic scheme work).
//
// Reports accesses/second per tier.  --json-out=FILE writes one JSON
// record tagged with --label; BENCH_hotpath.json / BENCH_frontend.json at
// the repo root keep the pre-refactor baselines and the post-refactor
// numbers side by side.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "cpu/core.hpp"
#include "schemes/factory.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "trace/profile.hpp"
#include "trace/synth_stream.hpp"

namespace {

using namespace snug;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

/// A compact pre-generated address buffer: uniform blocks over 2x the
/// cache capacity.  Pre-generated (and cycled) so that neither random
/// sampling nor trace-buffer memory traffic sits on the measured path.
std::vector<Addr> raw_addresses(const char* tag, std::uint64_t footprint) {
  Rng rng(Rng::derive_seed(tag));
  std::vector<Addr> addrs(1 << 16);
  for (auto& a : addrs) a = rng.below(footprint) * 64;
  return addrs;
}

/// Local access/fill mix over a footprint of 2x the cache capacity:
/// roughly half the accesses hit, the other half take the miss + fill +
/// eviction path.  Returns accesses per second.
double raw_local_mix(std::uint64_t ops, std::uint64_t& checksum) {
  const cache::CacheGeometry geo(1 << 20, 16, 64);
  cache::SetAssocCache l2("hot.raw", geo);
  const std::vector<Addr> addrs =
      raw_addresses("hot-path-raw", 2 * geo.capacity_bytes() / 64);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t cursor = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const Addr addr = addrs[cursor];
    if (++cursor == addrs.size()) cursor = 0;
    const bool is_write = (i & 3) == 0;
    const cache::AccessResult res = l2.access_local(addr, is_write);
    if (!res.hit) {
      const cache::Eviction ev = l2.fill_local(addr, is_write, 0);
      checksum += ev.line.tag;
    }
    checksum += res.way;
  }
  const double dt = seconds_since(t0);
  checksum += l2.stats().hits();
  return static_cast<double>(ops) / dt;
}

/// Cooperative-path mix: lookup_cc, forward-and-invalidate on a hit,
/// insert_cc (alternating the flipped placement) on a miss.
double raw_cc_mix(std::uint64_t ops, std::uint64_t& checksum) {
  const cache::CacheGeometry geo(1 << 20, 16, 64);
  cache::SetAssocCache l2("hot.cc", geo);
  const std::vector<Addr> addrs =
      raw_addresses("hot-path-cc", 2 * geo.capacity_bytes() / 64);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t cursor = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const Addr addr = addrs[cursor];
    if (++cursor == addrs.size()) cursor = 0;
    const cache::CcLocation loc = l2.lookup_cc(addr);
    if (loc.found) {
      l2.forward_and_invalidate(loc);
    } else {
      const cache::Eviction ev = l2.insert_cc(addr, 1, (i & 1) != 0);
      checksum += ev.line.tag;
    }
  }
  const double dt = seconds_since(t0);
  checksum += l2.stats().cc_forwarded();
  return static_cast<double>(ops) / dt;
}

struct FrontendResult {
  double instr_per_sec = 0.0;   ///< full synthesis through InstrStream::next()
  double l2_acc_per_sec = 0.0;  ///< bare next_l2_access() generation
};

/// Front-end tier: a SyntheticStream on the paper's 1 MB 16-way slice
/// geometry (1024 sets), class-A profile (large, non-uniform per-set
/// demand — the most stack work per reference).  `next()` is consumed
/// through the per-instruction virtual InstrStream interface — the one
/// call shape that exists on both sides of the front-end overhaul, so
/// pre/post binaries built from this same source stay comparable (the
/// post core model consumes the faster SoA fill_batch; that path is
/// covered end to end by the run tier below).  `next_l2_access()` is the
/// raw address generator the 100 M-access characterisation campaigns
/// (Figures 1-3) are built on.
FrontendResult frontend_mix(std::uint64_t instr_ops, std::uint64_t l2_ops,
                            std::uint64_t& checksum) {
  trace::StreamConfig cfg;
  cfg.num_sets = 1024;
  cfg.line_bytes = 64;
  cfg.phase_period_refs = 1'000'000;
  cfg.stream_seed = 7;

  FrontendResult out;
  {
    trace::SyntheticStream stream(trace::profile_for("ammp"), cfg);
    trace::InstrStream& virt = stream;  // consume like the core model does
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < instr_ops; ++i) {
      const trace::Instr in = virt.next();
      checksum += in.addr + static_cast<std::uint64_t>(in.kind);
    }
    out.instr_per_sec = static_cast<double>(instr_ops) / seconds_since(t0);
    checksum += stream.l2_refs();
  }
  {
    trace::SyntheticStream stream(trace::profile_for("ammp"), cfg);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < l2_ops; ++i) {
      checksum += stream.next_l2_access();
    }
    out.l2_acc_per_sec = static_cast<double>(l2_ops) / seconds_since(t0);
    checksum += stream.l2_refs();
  }
  return out;
}

/// End-to-end run tier: CmpSystem::run drives the core loop, trace
/// synthesis, the memory hierarchy and the scheme tick together — the
/// configuration every campaign cycle actually pays.  Returns retired
/// instructions per second over the measurement window.
double system_run_mix(const sim::ScenarioSpec& scenario,
                      const schemes::SchemeSpec& spec, Cycle warmup,
                      Cycle measure, std::uint64_t& checksum) {
  const auto combos = scenario.combos();
  SNUG_REQUIRE_MSG(!combos.empty(), "scenario expands to no combos");
  sim::CmpSystem sys(scenario, spec, combos.front());
  sys.run(warmup);
  sys.begin_measurement();
  const auto t0 = std::chrono::steady_clock::now();
  sys.run(measure);
  const double dt = seconds_since(t0);
  std::uint64_t retired = 0;
  for (CoreId c = 0; c < scenario.num_cores; ++c) {
    retired += sys.core(c).stats().retired;
  }
  checksum += retired + sys.now();
  return static_cast<double>(retired) / dt;
}

struct SystemResult {
  double acc_per_sec = 0.0;       ///< end-to-end data_access/inst_fetch
  double l2_acc_per_sec = 0.0;    ///< scheme()->access driven directly
  std::uint64_t accesses = 0;
};

/// Full-system tier: data_access/inst_fetch on a pre-generated trace.
/// One ifetch block access is interleaved per four data accesses, the
/// per-core ratio the core model produces for typical mixes.
SystemResult system_mix(const sim::ScenarioSpec& scenario,
                        const schemes::SchemeSpec& spec, std::uint64_t ops,
                        Cycle warmup, std::uint64_t& checksum) {
  const auto combos = scenario.combos();
  SNUG_REQUIRE_MSG(!combos.empty(), "scenario expands to no combos");
  sim::CmpSystem sys(scenario, spec, combos.front());

  // Warm caches and predictors through the real pipeline first.
  sys.run(warmup);

  // Pre-generate each core's data references so trace synthesis is not
  // on the measured path.  The replay buffer is deliberately compact
  // (cycled when ops exceed it): it must stay machine-cache-resident so
  // the measured cost is the simulator's access path, not streaming the
  // trace itself from memory.
  const std::uint32_t cores = scenario.num_cores;
  const std::uint64_t per_core =
      std::min<std::uint64_t>(ops / (4 * cores) + 1, 16384);
  std::vector<std::vector<std::pair<Addr, bool>>> refs(cores);
  for (CoreId c = 0; c < cores; ++c) {
    refs[c].reserve(per_core);
    while (refs[c].size() < per_core) {
      const trace::Instr in = sys.stream(c).next();
      if (in.kind == trace::InstrKind::kLoad) {
        refs[c].emplace_back(in.addr, false);
      } else if (in.kind == trace::InstrKind::kStore) {
        refs[c].emplace_back(in.addr, true);
      }
    }
  }

  // Replay round-robin: four data accesses then one ifetch per core turn,
  // mirroring Core::dispatch_one's per-block fetch cadence over the same
  // code region and I-footprint the core model uses.
  std::vector<std::size_t> cursor(cores, 0);
  std::vector<Addr> code_cursor(cores, 0);
  const std::uint32_t code_blocks = cpu::CoreConfig{}.code_blocks;
  const std::uint32_t line_bytes = scenario.line_bytes;
  Cycle now = sys.now();
  std::uint64_t accesses = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (accesses < ops) {
    for (CoreId c = 0; c < cores && accesses < ops; ++c) {
      const auto& trace = refs[c];
      std::size_t i = cursor[c];
      for (int k = 0; k < 4; ++k) {
        const auto& [addr, is_write] = trace[i];
        if (++i == trace.size()) i = 0;
        now = sys.data_access(c, addr, is_write, now);
        ++accesses;
      }
      cursor[c] = i;
      const Addr pc = cpu::code_base(c) +
                      (code_cursor[c]++ % code_blocks) * line_bytes;
      now = sys.inst_fetch(c, pc, now);
      ++accesses;
    }
  }
  const double dt = seconds_since(t0);
  checksum += now;

  // L2 tier: the same machine, but every reference is driven straight
  // into the L2 organisation (scheme access path — local lookup, peer
  // retrieve, spill routing).  This is the "per-access cost in the cache
  // model" the scaling study is bound by at high core counts.
  const std::uint64_t l2_ops = ops / 8;
  std::uint64_t l2_done = 0;
  std::vector<std::size_t> l2_cursor(cores, 0);
  const auto t1 = std::chrono::steady_clock::now();
  while (l2_done < l2_ops) {
    for (CoreId c = 0; c < cores && l2_done < l2_ops; ++c) {
      const auto& trace = refs[c];
      std::size_t i = l2_cursor[c];
      for (int k = 0; k < 4; ++k) {
        const auto& [addr, is_write] = trace[i];
        if (++i == trace.size()) i = 0;
        now = sys.scheme().access(c, addr, is_write, now);
        ++l2_done;
      }
      l2_cursor[c] = i;
    }
  }
  const double dt2 = seconds_since(t1);
  checksum += now;
  return {static_cast<double>(accesses) / dt,
          static_cast<double>(l2_done) / dt2, accesses};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snug;
  CliArgs args(argc, argv);
  const std::int64_t raw_ops = args.get_int(
      "raw-ops", 8'000'000, "accesses per raw-tier measurement");
  const std::int64_t frontend_ops = args.get_int(
      "frontend-ops", 16'000'000,
      "instructions for the front-end synthesis tier (L2 tier runs 1/4)");
  const std::int64_t sys_ops = args.get_int(
      "system-ops", 4'000'000, "accesses for the system-tier measurement");
  const std::int64_t warmup = args.get_int(
      "warmup-cycles", 100'000, "system-tier pipeline warm-up cycles");
  const std::int64_t run_cycles = args.get_int(
      "run-cycles", 2'000'000, "cycles for the end-to-end run tier");
  const std::string scenario_text = args.get_string(
      "scenario", "name=hot8 cores=8 workload=2A+1B+1C",
      "system-tier scenario spec");
  const std::string scheme_id = args.get_string(
      "scheme", "SNUG", "system-tier L2 organisation (L2P, CC(50%), ...)");
  const std::string json_out = args.get_string(
      "json-out", "", "write the results as one JSON record to this file");
  const std::string label = args.get_string(
      "label", "run", "label stored in the JSON record");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  sim::ScenarioSpec scenario;
  std::string err;
  if (!sim::parse_scenario(scenario_text, scenario, err)) {
    std::fprintf(stderr, "hot_path_bench: bad --scenario: %s\n",
                 err.c_str());
    return 1;
  }
  schemes::SchemeSpec scheme;
  if (!schemes::parse_scheme_id(scheme_id, scheme)) {
    std::fprintf(stderr, "hot_path_bench: unknown --scheme '%s'\n",
                 scheme_id.c_str());
    return 1;
  }

  schemes::SchemeSpec l2p;
  SNUG_ENSURE(schemes::parse_scheme_id("L2P", l2p));

  std::uint64_t checksum = 0;
  const double raw_local =
      raw_local_mix(static_cast<std::uint64_t>(raw_ops), checksum);
  const double raw_cc =
      raw_cc_mix(static_cast<std::uint64_t>(raw_ops) / 4, checksum);
  const FrontendResult frontend =
      frontend_mix(static_cast<std::uint64_t>(frontend_ops),
                   static_cast<std::uint64_t>(frontend_ops) / 4, checksum);
  const SystemResult system =
      system_mix(scenario, scheme, static_cast<std::uint64_t>(sys_ops),
                 static_cast<Cycle>(warmup), checksum);
  const double run_scheme =
      system_run_mix(scenario, scheme, static_cast<Cycle>(warmup),
                     static_cast<Cycle>(run_cycles), checksum);
  const double run_l2p =
      system_run_mix(scenario, l2p, static_cast<Cycle>(warmup),
                     static_cast<Cycle>(run_cycles), checksum);

  std::printf("hot_path_bench — %s\n", scenario.summary().c_str());
  std::printf("%-28s %14s\n", "tier", "per second");
  std::printf("%-28s %14s\n", "raw local access+fill",
              strf("%.2fM", raw_local / 1e6).c_str());
  std::printf("%-28s %14s\n", "raw cooperative mix",
              strf("%.2fM", raw_cc / 1e6).c_str());
  std::printf("%-28s %14s\n", "frontend instr synthesis",
              strf("%.2fM", frontend.instr_per_sec / 1e6).c_str());
  std::printf("%-28s %14s\n", "frontend L2-ref generation",
              strf("%.2fM", frontend.l2_acc_per_sec / 1e6).c_str());
  std::printf("%-28s %14s\n", "system data+ifetch",
              strf("%.2fM", system.acc_per_sec / 1e6).c_str());
  std::printf("%-28s %14s\n", "system L2 scheme access",
              strf("%.2fM", system.l2_acc_per_sec / 1e6).c_str());
  std::printf("%-28s %14s\n",
              strf("system run instr (%s)", scheme_id.c_str()).c_str(),
              strf("%.2fM", run_scheme / 1e6).c_str());
  std::printf("%-28s %14s\n", "system run instr (L2P)",
              strf("%.2fM", run_l2p / 1e6).c_str());
  std::printf("(checksum %llu)\n",
              static_cast<unsigned long long>(checksum));

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "hot_path_bench: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"label\": \"%s\",\n"
                 "  \"scenario\": \"%s\",\n"
                 "  \"raw_local_acc_per_sec\": %.0f,\n"
                 "  \"raw_cc_acc_per_sec\": %.0f,\n"
                 "  \"frontend_instr_per_sec\": %.0f,\n"
                 "  \"frontend_l2_acc_per_sec\": %.0f,\n"
                 "  \"system_acc_per_sec\": %.0f,\n"
                 "  \"system_l2_acc_per_sec\": %.0f,\n"
                 "  \"system_run_instr_per_sec\": %.0f,\n"
                 "  \"system_run_l2p_instr_per_sec\": %.0f,\n"
                 "  \"raw_ops\": %lld,\n"
                 "  \"frontend_ops\": %lld,\n"
                 "  \"run_cycles\": %lld,\n"
                 "  \"warmup_cycles\": %lld,\n"
                 "  \"system_accesses\": %llu\n"
                 "}\n",
                 label.c_str(), scenario_text.c_str(), raw_local, raw_cc,
                 frontend.instr_per_sec, frontend.l2_acc_per_sec,
                 system.acc_per_sec, system.l2_acc_per_sec, run_scheme,
                 run_l2p, static_cast<long long>(raw_ops),
                 static_cast<long long>(frontend_ops),
                 static_cast<long long>(run_cycles),
                 static_cast<long long>(warmup),
                 static_cast<unsigned long long>(system.accesses));
    std::fclose(f);
  }
  return 0;
}
