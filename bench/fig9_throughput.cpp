// Reproduces paper Figure 9: CMP throughput (sum of IPCs) of L2S,
// CC(Best), DSR and SNUG normalised to the private-L2 baseline, per
// workload class C1..C6 plus the overall average.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return snug::bench::run_figure_bench(
      argc, argv, snug::sim::Metric::kThroughputNorm, "Figure 9");
}
