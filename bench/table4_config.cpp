// Prints the simulated system configuration next to the paper's Table 4,
// including the scaled SNUG epochs and run windows actually used.
#include <cstdio>

#include "common/str.hpp"
#include "common/table.hpp"
#include "sim/config.hpp"

using namespace snug;

int main() {
  const sim::SystemConfig cfg = sim::paper_system_config();
  const sim::RunScale scale = sim::default_run_scale();

  std::printf("Table 4: simulator configuration (paper vs. this build)\n\n");
  TextTable t({"parameter", "paper", "this build"});
  t.add_row({"processors", "4", strf("%u", cfg.num_cores)});
  t.add_row({"issue/commit", "8/8", strf("%u/%u", cfg.core.issue_width,
                                         cfg.core.issue_width)});
  t.add_row({"RUU (ROB)", "128", strf("%u", cfg.core.rob_entries)});
  t.add_row({"LSQ", "64", strf("%u", cfg.core.lsq_entries)});
  t.add_row({"branch penalty", "3 cycles",
             strf("%llu cycles",
                  (unsigned long long)cfg.core.branch_penalty)});
  t.add_row({"L1 I/D", "4-way 32KB 64B, 1 cycle",
             strf("%u-way %lluKB %uB, 1 cycle", cfg.l1d.associativity(),
                  (unsigned long long)(cfg.l1d.capacity_bytes() >> 10),
                  cfg.l1d.line_bytes())});
  const auto& l2 = cfg.scheme_ctx.priv.l2;
  t.add_row({"L2 slice", "16-way 1MB 64B, 10 cycles local",
             strf("%u-way %lluMB %uB, 10 cycles local", l2.associativity(),
                  (unsigned long long)(l2.capacity_bytes() >> 20),
                  l2.line_bytes())});
  t.add_row({"remote L2 (CC/DSR)", "30 cycles", "30 cycles"});
  t.add_row({"remote L2 (SNUG)", "40 cycles", "40 cycles"});
  t.add_row({"snoop bus", "16B split, 4:1, 1-cycle arb",
             strf("%uB split, %u:1, %u-cycle arb", cfg.bus.width_bytes,
                  cfg.bus.speed_ratio, cfg.bus.arb_cycles)});
  t.add_row({"DRAM latency", "300 cycles",
             strf("%llu cycles", (unsigned long long)cfg.dram.latency)});
  t.add_row({"L2 write buffer", "16x64B FIFO, mergeable, direct read",
             strf("%ux64B FIFO, mergeable, direct read",
                  cfg.scheme_ctx.priv.wbb.entries)});
  t.add_row({"SNUG identify epoch", "5M cycles",
             strf("%lluM cycles (scaled)",
                  (unsigned long long)(cfg.scheme_ctx.snug.epochs
                                           .identify_cycles / 1'000'000))});
  t.add_row({"SNUG group epoch", "100M cycles",
             strf("%lluM cycles (scaled)",
                  (unsigned long long)(cfg.scheme_ctx.snug.epochs
                                           .group_cycles / 1'000'000))});
  t.add_row({"fast-forward / measure", "6G / 3G cycles",
             strf("%lluM / %lluM cycles (scaled)",
                  (unsigned long long)(scale.warmup_cycles / 1'000'000),
                  (unsigned long long)(scale.measure_cycles / 1'000'000))});
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nSet SNUG_FULL_SCALE=1 for paper-scale epochs and windows.\n");
  return 0;
}
