// Ablation (beyond the paper's tables): how much of SNUG's benefit comes
// from the index-bit-flipping grouper?  Runs the C1 stress tests — where
// identical demand maps make same-index placement impossible, so flipping
// is SNUG's only outlet — with flipping on and off.
#include <cstdio>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "sim/figures.hpp"
#include "sim/runner.hpp"

using namespace snug;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quiet = args.get_bool("quiet", true, "suppress progress");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  std::printf("Ablation: index-bit flipping on/off (class C1 stress "
              "tests)\n\n");
  const sim::RunScale scale = sim::default_run_scale();
  TextTable t({"combo", "SNUG thr vs L2P", "SNUG(no flip) thr vs L2P"});

  for (const auto& combo : trace::combos_in_class(1)) {
    double with_flip = 0.0;
    double without_flip = 0.0;
    std::vector<double> base_ipc;
    for (const bool flip : {true, false}) {
      sim::SystemConfig cfg = sim::paper_system_config();
      cfg.scheme_ctx.snug.flip_enabled = flip;
      // Distinct cache key: disable the cache for the no-flip variant by
      // running through a dedicated directory.
      sim::ExperimentRunner runner(
          cfg, scale,
          sim::default_cache_dir() + (flip ? "" : "_noflip"));
      if (!quiet) {
        runner.on_progress = [](const std::string& c, const std::string& s,
                                bool cached) {
          std::fprintf(stderr, "  [%s] %s %s\n", c.c_str(), s.c_str(),
                       cached ? "(cached)" : "...");
        };
      }
      const auto base =
          runner.run(combo, {schemes::SchemeKind::kL2P, 0});
      const auto snug_result =
          runner.run(combo, {schemes::SchemeKind::kSNUG, 0});
      const double v = sim::metric_value(sim::Metric::kThroughputNorm,
                                         snug_result.ipc, base.ipc);
      if (flip) {
        with_flip = v;
      } else {
        without_flip = v;
      }
      base_ipc = base.ipc;
    }
    t.add_row({combo.name, pct(with_flip - 1.0), pct(without_flip - 1.0)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nWith identical co-scheduled applications the same-index set is "
      "always in the same G/T state as the spilling set, so disabling "
      "flipping should erase nearly the whole C1 gain (paper Section 5).\n");
  return 0;
}
