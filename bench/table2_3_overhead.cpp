// Reproduces paper Table 2 (field lengths of the SNUG structures for the
// Table 4 configuration) and Table 3 (storage overhead across address
// width x line size corners) from the Formula (6) model.
#include <cstdio>

#include "common/str.hpp"
#include "common/table.hpp"
#include "core/overhead.hpp"

using namespace snug;

int main() {
  std::printf("Table 2: SNUG field lengths (1 MB, 16-way, 64 B lines, "
              "32-bit addresses)\n\n");
  const core::OverheadBreakdown b =
      core::compute_overhead(core::OverheadParams{});
  TextTable fields({"field", "value"});
  fields.add_row({"cache sets", strf("%u", b.num_sets)});
  fields.add_row({"tag field", strf("%u bits", b.tag_bits)});
  fields.add_row({"LRU field", strf("%u bits", b.lru_bits)});
  fields.add_row({"CC, f, v, d", "1 bit each"});
  fields.add_row({"saturating counter k", "4 bits"});
  fields.add_row({"mod-p divider (p=8)", "3 bits"});
  fields.add_row({"L2 line", strf("%llu bits",
                                  (unsigned long long)b.l2_line_bits)});
  fields.add_row({"shadow entry", strf("%llu bits",
                                       (unsigned long long)b.shadow_entry_bits)});
  fields.add_row({"shadow set total", strf("%llu bits",
                                           (unsigned long long)b.shadow_set_bits)});
  fields.add_row({"storage overhead", pct(b.overhead)});
  std::fputs(fields.render().c_str(), stdout);

  std::printf("\nTable 3: storage overhead by address width and line size "
              "(1 MB, 16-way)\n\n");
  TextTable t3({"line size", "32-bit address", "64-bit address (44 used)",
                "paper 32-bit", "paper 64-bit"});
  for (const std::uint32_t line : {64U, 128U}) {
    core::OverheadParams p32;
    p32.line_bytes = line;
    core::OverheadParams p64 = p32;
    p64.address_bits = 44;
    const double o32 = core::compute_overhead(p32).overhead;
    const double o64 = core::compute_overhead(p64).overhead;
    t3.add_row({strf("%uB", line), strf("%.1f%%", o32 * 100),
                strf("%.1f%%", o64 * 100), line == 64 ? "3.9%" : "2.1%",
                line == 64 ? "5.8%" : "3.1%"});
  }
  std::fputs(t3.render().c_str(), stdout);
  return 0;
}
