// Shared harness for the Figure 9/10/11 benches: runs (or loads from the
// shared disk cache) the full 21-combo x 9-scheme campaign — fanned out
// over --jobs worker threads — and renders one metric as the paper
// renders it: per-class geometric means, C1..C6 plus AVG, normalised to
// L2P.  Parallel runs are bit-identical to --jobs=1; a warm cache skips
// simulation entirely.
//
// The campaign is described by a ScenarioSpec (sim/scenario.hpp): the
// default is the paper's quad-core Table 4 machine, and --list-schemes /
// --list-combos / --dry-run print the expanded grid without simulating.
#pragma once

#include <cstdio>
#include <optional>
#include <span>
#include <string>

#include "common/cli.hpp"
#include "common/fault.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "sim/figures.hpp"
#include "sim/lane_engine.hpp"

namespace snug::bench {

/// The robustness knobs every campaign bench shares: checkpoint journal,
/// deterministic fault-injection plan, transient-failure retry policy and
/// the wedged-worker watchdog deadline.
struct RobustnessOpts {
  std::string journal;          ///< --journal= checkpoint file ("" = off)
  std::string fault_plan_text;  ///< --fault-plan= source text ("" = off)
  fault::FaultPlan plan;        ///< parsed from fault_plan_text
  std::int64_t retry_attempts = 3;
  std::int64_t backoff_ms = 10;
  std::int64_t watchdog_ms = 0;

  /// Installs the parsed plan into `scoped` for that guard's lifetime
  /// (no-op without --fault-plan).  Emplace-in-place because the guard
  /// is pinned (non-movable); hold it across store construction AND the
  /// campaign run — stores resolve their Env when built.
  void install(std::optional<fault::ScopedFaultPlan>& scoped) const {
    if (!plan.empty()) scoped.emplace(plan);
  }
};

/// Registers --journal / --fault-plan / --retry-attempts /
/// --retry-backoff-ms / --watchdog-ms and parses the fault plan.
/// Returns false (after printing a one-line diagnostic) when the plan
/// text does not parse; the caller should exit non-zero.
inline bool parse_robustness_flags(CliArgs& args, RobustnessOpts& r) {
  r.journal = args.get_string(
      "journal", "",
      "campaign checkpoint journal: completed cells are appended as they "
      "finish, and a resumed run replays them instead of re-simulating");
  r.fault_plan_text = args.get_string(
      "fault-plan", "",
      "deterministic fault-injection plan, e.g. \"seed=7; "
      "short-write@write:p=0.2\" (grammar in src/common/fault.hpp)");
  r.retry_attempts = args.get_int(
      "retry-attempts", 3,
      "max attempts per campaign cell on an injected transient failure");
  r.backoff_ms = args.get_int(
      "retry-backoff-ms", 10,
      "first retry backoff in ms, doubling per attempt (no jitter)");
  r.watchdog_ms = args.get_int(
      "watchdog-ms", 0,
      "flag (never kill) a worker holding one task longer than this many "
      "ms, with a diagnostic dump (0 = off)");
  if (args.help_requested() || r.fault_plan_text.empty()) return true;
  std::string error;
  if (!fault::FaultPlan::parse(r.fault_plan_text, r.plan, error)) {
    std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// Forwards the parsed knobs onto a campaign engine.
inline void apply_robustness(const RobustnessOpts& r,
                             sim::CampaignEngine& engine) {
  engine.journal_path = r.journal;
  engine.retry.max_attempts =
      r.retry_attempts > 0 ? static_cast<unsigned>(r.retry_attempts) : 1;
  engine.retry.backoff_ms =
      r.backoff_ms > 0 ? static_cast<std::uint64_t>(r.backoff_ms) : 0;
  engine.set_watchdog_ms(
      r.watchdog_ms > 0 ? static_cast<std::uint64_t>(r.watchdog_ms) : 0);
}

/// One stderr line of recovery/retry counters after a campaign: printed
/// whenever anything noteworthy happened (always under a fault plan or
/// journal, so faulty and resumed runs are auditable even with --quiet
/// off the table).
inline void print_robustness_summary(const sim::CampaignEngine& engine,
                                     const sim::ExperimentRunner& runner,
                                     bool force) {
  const sim::CampaignEngine::Stats& s = engine.stats();
  const sim::EvalCache::Recovery cache = runner.cache_recovery();
  const sim::WarmStateBank::Recovery warm = runner.warm_recovery();
  const fault::FaultStats faults = fault::installed_stats();
  const std::uint64_t noteworthy =
      s.replayed + s.retries + s.watchdog_flags +
      s.journal_discarded_bytes + s.journal_append_failures +
      s.journal_stale_reaped + (s.journal_reset_stale ? 1 : 0) +
      cache.quarantined + cache.reaped_temps + cache.quarantine_trimmed +
      warm.quarantined + warm.reaped_temps + warm.quarantine_trimmed +
      faults.total();
  if (!force && noteworthy == 0) return;
  std::fprintf(
      stderr,
      "robustness: %llu replayed, %llu retries, %llu watchdog flag(s); "
      "cache %llu quarantined / %llu temps reaped / %llu quarantine "
      "trimmed, warm bank %llu quarantined / %llu temps reaped; journal "
      "%llu torn byte(s) discarded, %llu append failure(s), %llu stale "
      "reaped%s; %llu fault(s) injected\n",
      static_cast<unsigned long long>(s.replayed),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.watchdog_flags),
      static_cast<unsigned long long>(cache.quarantined),
      static_cast<unsigned long long>(cache.reaped_temps),
      static_cast<unsigned long long>(cache.quarantine_trimmed),
      static_cast<unsigned long long>(warm.quarantined),
      static_cast<unsigned long long>(warm.reaped_temps),
      static_cast<unsigned long long>(s.journal_discarded_bytes),
      static_cast<unsigned long long>(s.journal_append_failures),
      static_cast<unsigned long long>(s.journal_stale_reaped),
      s.journal_reset_stale ? " (stale journal moved aside)" : "",
      static_cast<unsigned long long>(faults.total()));
}

/// Registers the --list-schemes / --list-combos / --dry-run flags every
/// campaign bench shares and, when one was passed, prints the requested
/// listing for each spec of the sweep (the figure benches pass exactly
/// one; scaling_study one per topology).  --dry-run also reports the
/// robustness configuration when `robust` is given.  Returns true when
/// the caller should exit (a listing was printed).
inline bool handle_grid_listings(CliArgs& args,
                                 std::span<const sim::CampaignSpec> sweep,
                                 const RobustnessOpts* robust = nullptr) {
  const bool list_schemes =
      args.get_bool("list-schemes", false, "print the scheme grid and exit");
  const bool list_combos = args.get_bool(
      "list-combos", false, "print the expanded workload combos and exit");
  const bool dry_run = args.get_bool(
      "dry-run", false,
      "print the expanded scenario x scheme grid and exit (no simulation)");
  if (args.help_requested()) return false;
  if (list_schemes && !sweep.empty()) {
    // Every spec of a sweep runs the same scheme grid.
    std::fputs(sim::describe_schemes(sweep.front().schemes).c_str(),
               stdout);
  }
  if (list_combos) {
    for (const auto& spec : sweep) {
      if (sweep.size() > 1) {
        std::printf("%s:\n", spec.scenario.name.c_str());
      }
      std::fputs(sim::describe_combos(spec.combos()).c_str(), stdout);
    }
  }
  if (dry_run) {
    for (const auto& spec : sweep) {
      std::fputs(sim::describe_grid(spec).c_str(), stdout);
      // Resolved lane plan: how the scenario's `lanes=` knob packs the
      // grid into lockstep lane groups (sim/lane_engine.hpp).  Groups
      // are scheme-major — a group's lanes share the scheme and differ
      // only in rotated workload variant — and a leftover single combo
      // runs on the scalar path.
      const std::uint32_t lanes = spec.scenario.scale.lanes;
      if (lanes <= 1) {
        std::printf("lane width: 1 (scalar engine; lanes= packs points "
                    "into lockstep groups)\n");
      } else {
        const std::vector<trace::WorkloadCombo> combos = spec.combos();
        const std::size_t n_schemes = spec.schemes.size();
        const std::vector<sim::LaneGroupPlan> plans =
            sim::plan_lane_groups(combos.size(), n_schemes, lanes);
        std::size_t scalar_remainder = 0;
        for (const auto& plan : plans) {
          scalar_remainder += plan.tasks.size() == 1 ? 1 : 0;
        }
        std::printf("lane width: %u — %zu task(s) in %zu lane group(s), "
                    "%zu scalar remainder point(s)\n",
                    lanes, combos.size() * n_schemes, plans.size(),
                    scalar_remainder);
        for (std::size_t p = 0; p < plans.size(); ++p) {
          std::string line = strf("  group %2zu [W=%zu]:", p,
                                  plans[p].tasks.size());
          for (const std::size_t task : plans[p].tasks) {
            line += strf(" %s/%s", combos[task / n_schemes].name.c_str(),
                         spec.schemes[task % n_schemes].id().c_str());
          }
          std::printf("%s\n", line.c_str());
        }
      }
      // Resolved warm-up plan: under warmup-mode=functional each campaign
      // point either restores its warm prefix from the warm-state bank
      // (hit) or warms functionally once and banks the checkpoint (miss).
      // The probe is header-validated only, so a predicted hit can still
      // fall back to a fresh warm-up if the entry turns out torn.
      const bool functional = spec.scenario.scale.warmup_mode ==
                              sim::WarmupMode::kFunctional;
      std::printf("warm-up mode: %s%s\n",
                  functional ? "functional" : "timing",
                  functional
                      ? strf(" (bank %s)",
                             sim::default_warm_bank_dir().c_str())
                            .c_str()
                      : " (warm-state bank inactive)");
      if (functional) {
        const sim::ExperimentRunner probe(spec.scenario, /*cache_dir=*/"");
        for (const auto& combo : spec.combos()) {
          for (const auto& scheme : spec.schemes) {
            std::printf("  %-24s %-10s warm bank %s\n", combo.name.c_str(),
                        scheme.id().c_str(),
                        probe.warm_state_banked(combo, scheme) ? "hit"
                                                               : "miss");
          }
        }
      }
    }
    if (robust != nullptr) {
      std::printf("journal: %s\n", robust->journal.empty()
                                       ? "disabled (--journal= to "
                                         "checkpoint/resume)"
                                       : robust->journal.c_str());
      if (robust->plan.empty()) {
        std::printf("fault plan: none\n");
      } else {
        std::printf("fault plan: %s\n", robust->plan.summary().c_str());
      }
      std::printf("retry: %lld attempt(s), backoff %lld ms doubling; "
                  "watchdog: %s\n",
                  static_cast<long long>(robust->retry_attempts),
                  static_cast<long long>(robust->backoff_ms),
                  robust->watchdog_ms > 0
                      ? strf("%lld ms",
                             static_cast<long long>(robust->watchdog_ms))
                            .c_str()
                      : "off");
    }
  }
  return list_schemes || list_combos || dry_run;
}

inline int run_figure_bench(int argc, char** argv, sim::Metric metric,
                            const char* figure_name) {
  CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false, "emit CSV instead of a table");
  const std::string cache_dir = args.get_string(
      "cache-dir", sim::default_cache_dir(), "simulation result cache");
  const bool quiet = args.get_bool("quiet", false, "suppress progress");
  const std::int64_t jobs = args.get_jobs();
  const std::int64_t warmup = args.get_int(
      "warmup-cycles", 0, "override warm-up cycles (0 = default scale)");
  const std::int64_t measure = args.get_int(
      "measure-cycles", 0, "override measured cycles (0 = default scale)");
  RobustnessOpts robust;
  if (!parse_robustness_flags(args, robust)) return 2;

  sim::CampaignSpec spec = sim::CampaignSpec::paper();
  if (warmup > 0) spec.scenario.scale.warmup_cycles =
      static_cast<Cycle>(warmup);
  if (measure > 0) spec.scenario.scale.measure_cycles =
      static_cast<Cycle>(measure);

  const bool listed = handle_grid_listings(args, {&spec, 1}, &robust);
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();
  if (listed) return 0;

  // Install the fault plan (if any) before the runner exists: the eval
  // cache and warm-state bank capture fault::env() at construction.
  std::optional<fault::ScopedFaultPlan> faults;
  robust.install(faults);
  sim::ExperimentRunner runner(spec.scenario, cache_dir);
  sim::CampaignEngine engine(runner, sim::resolve_jobs(jobs));
  apply_robustness(robust, engine);
  ProgressMeter meter(!quiet);
  engine.on_progress = [&meter](const sim::CampaignProgress& p) {
    meter.report(p.done, p.total, p.combo + " / " + p.scheme,
                 p.replayed ? "(journal)"
                            : (p.cached ? "(cached)" : "simulated"));
  };
  if (!quiet) {
    std::fprintf(stderr, "%s campaign: %u worker(s), cache %s\n",
                 figure_name, engine.jobs(),
                 cache_dir.empty() ? "disabled" : cache_dir.c_str());
  }

  const sim::CampaignResults results = engine.run(spec);
  print_robustness_summary(engine, runner,
                           /*force=*/faults.has_value() ||
                               !robust.journal.empty());
  const sim::FigureSeries fig = sim::assemble_figure(results, metric);

  std::printf("%s — %s\n", figure_name, sim::to_string(metric));
  std::printf("(geometric means per workload class, normalised to L2P)\n\n");
  const TextTable table = sim::figure_table(fig);
  std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);

  const auto& snug_row = fig.values.at("SNUG");
  const auto& dsr_row = fig.values.at("DSR");
  std::printf("\nSNUG average gain over L2P: %s (paper: +13.9%% thr / "
              "+13.0%% AWS / +10.4%% FS)\n",
              pct(snug_row[6] - 1.0).c_str());
  std::printf("DSR  average gain over L2P: %s (paper: +8.4%% thr / "
              "+9.9%% AWS / +6.3%% FS)\n",
              pct(dsr_row[6] - 1.0).c_str());
  return 0;
}

}  // namespace snug::bench
