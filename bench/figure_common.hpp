// Shared harness for the Figure 9/10/11 benches: runs (or loads from the
// shared disk cache) the full 21-combo x 9-scheme campaign — fanned out
// over --jobs worker threads — and renders one metric as the paper
// renders it: per-class geometric means, C1..C6 plus AVG, normalised to
// L2P.  Parallel runs are bit-identical to --jobs=1; a warm cache skips
// simulation entirely.
//
// The campaign is described by a ScenarioSpec (sim/scenario.hpp): the
// default is the paper's quad-core Table 4 machine, and --list-schemes /
// --list-combos / --dry-run print the expanded grid without simulating.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "sim/campaign.hpp"
#include "sim/figures.hpp"
#include "sim/lane_engine.hpp"

namespace snug::bench {

/// Registers the --list-schemes / --list-combos / --dry-run flags every
/// campaign bench shares and, when one was passed, prints the requested
/// listing for each spec of the sweep (the figure benches pass exactly
/// one; scaling_study one per topology).  Returns true when the caller
/// should exit (a listing was printed).
inline bool handle_grid_listings(CliArgs& args,
                                 std::span<const sim::CampaignSpec> sweep) {
  const bool list_schemes =
      args.get_bool("list-schemes", false, "print the scheme grid and exit");
  const bool list_combos = args.get_bool(
      "list-combos", false, "print the expanded workload combos and exit");
  const bool dry_run = args.get_bool(
      "dry-run", false,
      "print the expanded scenario x scheme grid and exit (no simulation)");
  if (args.help_requested()) return false;
  if (list_schemes && !sweep.empty()) {
    // Every spec of a sweep runs the same scheme grid.
    std::fputs(sim::describe_schemes(sweep.front().schemes).c_str(),
               stdout);
  }
  if (list_combos) {
    for (const auto& spec : sweep) {
      if (sweep.size() > 1) {
        std::printf("%s:\n", spec.scenario.name.c_str());
      }
      std::fputs(sim::describe_combos(spec.combos()).c_str(), stdout);
    }
  }
  if (dry_run) {
    for (const auto& spec : sweep) {
      std::fputs(sim::describe_grid(spec).c_str(), stdout);
      // Resolved lane plan: how the scenario's `lanes=` knob packs the
      // grid into lockstep lane groups (sim/lane_engine.hpp).  Groups
      // are scheme-major — a group's lanes share the scheme and differ
      // only in rotated workload variant — and a leftover single combo
      // runs on the scalar path.
      const std::uint32_t lanes = spec.scenario.scale.lanes;
      if (lanes <= 1) {
        std::printf("lane width: 1 (scalar engine; lanes= packs points "
                    "into lockstep groups)\n");
      } else {
        const std::vector<trace::WorkloadCombo> combos = spec.combos();
        const std::size_t n_schemes = spec.schemes.size();
        const std::vector<sim::LaneGroupPlan> plans =
            sim::plan_lane_groups(combos.size(), n_schemes, lanes);
        std::size_t scalar_remainder = 0;
        for (const auto& plan : plans) {
          scalar_remainder += plan.tasks.size() == 1 ? 1 : 0;
        }
        std::printf("lane width: %u — %zu task(s) in %zu lane group(s), "
                    "%zu scalar remainder point(s)\n",
                    lanes, combos.size() * n_schemes, plans.size(),
                    scalar_remainder);
        for (std::size_t p = 0; p < plans.size(); ++p) {
          std::string line = strf("  group %2zu [W=%zu]:", p,
                                  plans[p].tasks.size());
          for (const std::size_t task : plans[p].tasks) {
            line += strf(" %s/%s", combos[task / n_schemes].name.c_str(),
                         spec.schemes[task % n_schemes].id().c_str());
          }
          std::printf("%s\n", line.c_str());
        }
      }
      // Resolved warm-up plan: under warmup-mode=functional each campaign
      // point either restores its warm prefix from the warm-state bank
      // (hit) or warms functionally once and banks the checkpoint (miss).
      // The probe is header-validated only, so a predicted hit can still
      // fall back to a fresh warm-up if the entry turns out torn.
      const bool functional = spec.scenario.scale.warmup_mode ==
                              sim::WarmupMode::kFunctional;
      std::printf("warm-up mode: %s%s\n",
                  functional ? "functional" : "timing",
                  functional
                      ? strf(" (bank %s)",
                             sim::default_warm_bank_dir().c_str())
                            .c_str()
                      : " (warm-state bank inactive)");
      if (functional) {
        const sim::ExperimentRunner probe(spec.scenario, /*cache_dir=*/"");
        for (const auto& combo : spec.combos()) {
          for (const auto& scheme : spec.schemes) {
            std::printf("  %-24s %-10s warm bank %s\n", combo.name.c_str(),
                        scheme.id().c_str(),
                        probe.warm_state_banked(combo, scheme) ? "hit"
                                                               : "miss");
          }
        }
      }
    }
  }
  return list_schemes || list_combos || dry_run;
}

inline int run_figure_bench(int argc, char** argv, sim::Metric metric,
                            const char* figure_name) {
  CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false, "emit CSV instead of a table");
  const std::string cache_dir = args.get_string(
      "cache-dir", sim::default_cache_dir(), "simulation result cache");
  const bool quiet = args.get_bool("quiet", false, "suppress progress");
  const std::int64_t jobs = args.get_jobs();
  const std::int64_t warmup = args.get_int(
      "warmup-cycles", 0, "override warm-up cycles (0 = default scale)");
  const std::int64_t measure = args.get_int(
      "measure-cycles", 0, "override measured cycles (0 = default scale)");

  sim::CampaignSpec spec = sim::CampaignSpec::paper();
  if (warmup > 0) spec.scenario.scale.warmup_cycles =
      static_cast<Cycle>(warmup);
  if (measure > 0) spec.scenario.scale.measure_cycles =
      static_cast<Cycle>(measure);

  const bool listed = handle_grid_listings(args, {&spec, 1});
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();
  if (listed) return 0;

  sim::ExperimentRunner runner(spec.scenario, cache_dir);
  sim::CampaignEngine engine(runner, sim::resolve_jobs(jobs));
  ProgressMeter meter(!quiet);
  engine.on_progress = [&meter](const sim::CampaignProgress& p) {
    meter.report(p.done, p.total, p.combo + " / " + p.scheme,
                 p.cached ? "(cached)" : "simulated");
  };
  if (!quiet) {
    std::fprintf(stderr, "%s campaign: %u worker(s), cache %s\n",
                 figure_name, engine.jobs(),
                 cache_dir.empty() ? "disabled" : cache_dir.c_str());
  }

  const sim::CampaignResults results = engine.run(spec);
  const sim::FigureSeries fig = sim::assemble_figure(results, metric);

  std::printf("%s — %s\n", figure_name, sim::to_string(metric));
  std::printf("(geometric means per workload class, normalised to L2P)\n\n");
  const TextTable table = sim::figure_table(fig);
  std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);

  const auto& snug_row = fig.values.at("SNUG");
  const auto& dsr_row = fig.values.at("DSR");
  std::printf("\nSNUG average gain over L2P: %s (paper: +13.9%% thr / "
              "+13.0%% AWS / +10.4%% FS)\n",
              pct(snug_row[6] - 1.0).c_str());
  std::printf("DSR  average gain over L2P: %s (paper: +8.4%% thr / "
              "+9.9%% AWS / +6.3%% FS)\n",
              pct(dsr_row[6] - 1.0).c_str());
  return 0;
}

}  // namespace snug::bench
