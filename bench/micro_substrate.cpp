// Microbenchmarks of the substrate itself (google-benchmark): cache
// access throughput, LRU-stack profiling, trace generation, and end-to-end
// simulated cycles per second.  These quantify the cost of the simulation
// infrastructure, not the paper's results.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "cache/stack_profiler.hpp"
#include "common/rng.hpp"
#include "sim/system.hpp"
#include "trace/synth_stream.hpp"

using namespace snug;

namespace {

void BM_CacheAccess(benchmark::State& state) {
  const cache::CacheGeometry geo(1 << 20, 16, 64);
  cache::SetAssocCache l2("bench.l2", geo);
  Rng rng(42);
  std::vector<Addr> addrs;
  for (int i = 0; i < 4096; ++i) {
    addrs.push_back(geo.addr_of(rng.below(64), static_cast<SetIndex>(
                                                   rng.below(1024))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Addr a = addrs[i++ & 4095];
    const auto res = l2.access_local(a, false);
    if (!res.hit) l2.fill_local(a, false, 0);
    benchmark::DoNotOptimize(res.hit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_StackProfiler(benchmark::State& state) {
  cache::LruStackProfiler profiler(1024, 32);
  Rng rng(43);
  for (auto _ : state) {
    const auto set = static_cast<SetIndex>(rng.below(1024));
    profiler.access(set, rng.below(24));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StackProfiler);

void BM_TraceGeneration(benchmark::State& state) {
  trace::StreamConfig cfg;
  cfg.stream_seed = 7;
  trace::SyntheticStream stream(trace::profile_for("ammp"), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.next().addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void BM_L2AccessStream(benchmark::State& state) {
  trace::StreamConfig cfg;
  cfg.stream_seed = 7;
  trace::SyntheticStream stream(trace::profile_for("ammp"), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.next_l2_access());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L2AccessStream);

void BM_SimulatedCycles(benchmark::State& state) {
  const trace::WorkloadCombo combo{"bench", 3,
                                   {"ammp", "parser", "gzip", "mesa"}};
  sim::RunScale scale;
  scale.warmup_cycles = 0;
  scale.measure_cycles = 0;
  sim::CmpSystem sys(sim::paper_system_config(),
                     {schemes::SchemeKind::kSNUG, 0}, combo, scale);
  for (auto _ : state) {
    sys.run(1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_SimulatedCycles)->Unit(benchmark::kMicrosecond);

}  // namespace
