// Warm-up bench — the measurement device behind the ISSUE 6 functional
// fast-forward warm-up and the fingerprint-keyed warm-state bank.  Three
// tiers, each one full campaign point (machine build + warm-up + measured
// window) on the same 8-core scenario, interleaved round-robin and
// reported best-of-N so OS noise cannot favour a tier:
//
//   cold       — full-timing warm-up (warmup-mode=timing): CmpSystem::run
//                drives the core pipeline, bus, DRAM and write-back
//                buffers through the whole warm-up window.
//   functional — fast-forward warm-up (warmup-mode=functional):
//                CmpSystem::warm_functional drives cache contents and
//                scheme state against shadow bus/DRAM models, skipping
//                the timing machinery wholesale.
//   bank       — warm-state bank hit: the checkpoint a functional warm-up
//                stored under its warm fingerprint is loaded and restored
//                (bit-identical to re-warming, pinned by
//                tests/sim/warm_state_test.cpp), then measured.
//
// The measured windows are reported too: per-core IPC deltas functional
// vs cold (statistical closeness) and bank vs functional (exact — the
// restore is bit-identical in-process).
//
// The bench also records the monitor-sampling IPC sensitivity table the
// 16-core scaling configurations rely on (ISSUE 6 satellite): the same
// 16-core point under monitor-sample=1 (exact) and monitor-sample=8 (the
// sampled monitors the scaling study runs), per-core measured IPC side
// by side — plus the same comparison for each Table 8 workload class
// mix (C1..C6 scaled to 16 cores), so the "sampling is IPC-neutral"
// claim is backed per class, not by one mix (ISSUE 7 carry-over).  The
// per-class worst deltas land in the JSON record's `notes` field.
//
// --json-out=FILE writes one JSON record tagged with --label;
// BENCH_warmup.json at the repo root keeps the recorded tiers
// (scripts/check_bench_regression.py gates the speedups).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "schemes/factory.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"
#include "sim/warm_state.hpp"

namespace {

using namespace snug;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

/// One campaign point: everything a grid task pays per (combo, scheme)
/// cell — machine build, warm-up in the requested mode, measured window.
struct PointResult {
  double seconds = 0.0;
  std::vector<double> ipc;
  std::uint64_t checksum = 0;
};

enum class WarmTier { kCold, kFunctional, kBank };

PointResult run_point(const sim::SystemConfig& cfg,
                      const schemes::SchemeSpec& spec,
                      const trace::WorkloadCombo& combo,
                      const sim::RunScale& scale, WarmTier tier,
                      const sim::WarmStateBank* bank,
                      const std::string& bank_key,
                      std::uint64_t fingerprint) {
  PointResult out;
  const auto t0 = std::chrono::steady_clock::now();
  sim::CmpSystem sys(cfg, spec, combo, scale);
  switch (tier) {
    case WarmTier::kCold:
      sys.run(scale.warmup_cycles);
      break;
    case WarmTier::kFunctional:
      sys.warm_functional(scale.warmup_cycles);
      break;
    case WarmTier::kBank: {
      std::vector<std::byte> blob;
      SNUG_REQUIRE_MSG(bank != nullptr && bank->load(bank_key, fingerprint, blob),
                       "warm-state bank miss for key '%s'", bank_key.c_str());
      sys.load_warm_state(blob);
      break;
    }
  }
  sys.begin_measurement();
  sys.run(scale.measure_cycles);
  out.seconds = seconds_since(t0);
  out.ipc = sys.measured_ipc();
  out.checksum = sys.now();
  for (const double v : out.ipc) {
    out.checksum += static_cast<std::uint64_t>(v * 1e6);
  }
  return out;
}

/// Largest per-core relative IPC difference between two measured windows.
double max_rel_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  SNUG_ENSURE(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]) / a[i]);
  }
  return worst;
}

std::string join_doubles(const std::vector<double>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += strf(i == 0 ? "%.4f" : ", %.4f", v[i]);
  }
  return out;
}

/// Monitor-sampling sensitivity: the 16-core scaling point measured under
/// exact monitors and under the 1-in-8 sampling the scaling study uses.
struct SenseResult {
  std::vector<double> ipc_exact;
  std::vector<double> ipc_sampled;
  double max_delta = 0.0;
};

SenseResult monitor_sense(const sim::ScenarioSpec& base, Cycle warm,
                          Cycle measure, std::uint64_t& checksum) {
  SenseResult out;
  for (const std::uint32_t sample : {1U, 8U}) {
    sim::ScenarioSpec spec = base;
    spec.monitor_sample = sample;
    spec.scale.warmup_cycles = warm;
    spec.scale.measure_cycles = measure;
    const auto combos = spec.combos();
    SNUG_REQUIRE_MSG(!combos.empty(), "sense scenario expands to no combos");
    schemes::SchemeSpec snug;
    SNUG_ENSURE(schemes::parse_scheme_id("SNUG", snug));
    sim::CmpSystem sys(spec.system_config(), snug, combos.front(),
                       spec.scale);
    sys.run(warm);
    sys.begin_measurement();
    sys.run(measure);
    checksum += sys.now();
    (sample == 1 ? out.ipc_exact : out.ipc_sampled) = sys.measured_ipc();
  }
  out.max_delta = max_rel_delta(out.ipc_exact, out.ipc_sampled);
  return out;
}

/// The Table 8 workload classes as class-pattern mixes (Table 7 names).
/// Each total divides 16, so every mix scales to the 16-core point the
/// scaling study runs with monitor-sample=8.
struct SenseClass {
  const char* name;
  const char* mix;
};

constexpr SenseClass kSenseClasses[] = {
    {"C1", "4A"},       {"C2", "4C"},       {"C3", "2A+2C"},
    {"C4", "2A+1B+1C"}, {"C5", "2A+2D"},    {"C6", "2A+1B+1D"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace snug;
  CliArgs args(argc, argv);
  const std::string scenario_text = args.get_string(
      "scenario",
      "name=warm8 cores=8 workload=2A+1B+1C warmup-mode=functional",
      "campaign-point scenario spec");
  const std::string scheme_id = args.get_string(
      "scheme", "SNUG", "L2 organisation for the campaign point");
  const std::int64_t warm = args.get_int(
      "warmup-cycles", 1'500'000, "warm-up window (core cycles)");
  const std::int64_t measure = args.get_int(
      "measure-cycles", 150'000, "measured window (core cycles)");
  const std::int64_t rounds = args.get_int(
      "rounds", 5, "interleaved repetitions per tier (best-of)");
  const std::string sense_text = args.get_string(
      "sense-scenario", "name=sense16 cores=16 workload=2A+1B+1C",
      "monitor-sampling sensitivity scenario (16-core scaling point)");
  // Defaults cross the 1.5 M-cycle Stage I identification epoch: the
  // sampled monitors only influence simulated numbers through harvest
  // decisions, so a shorter window would compare two identical machines.
  const std::int64_t sense_warm = args.get_int(
      "sense-warmup-cycles", 1'600'000, "sensitivity warm-up (core cycles)");
  const std::int64_t sense_measure = args.get_int(
      "sense-measure-cycles", 400'000, "sensitivity window (core cycles)");
  const std::string bank_dir = args.get_string(
      "bank-dir", "warmup_bench.bank",
      "warm-state bank directory (recreated fresh each run)");
  const std::string json_out = args.get_string(
      "json-out", "", "write the results as one JSON record to this file");
  const std::string label = args.get_string(
      "label", "run", "label stored in the JSON record");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  sim::ScenarioSpec scenario;
  std::string err;
  if (!sim::parse_scenario(scenario_text, scenario, err)) {
    std::fprintf(stderr, "warmup_bench: bad --scenario: %s\n", err.c_str());
    return 1;
  }
  sim::ScenarioSpec sense_scenario;
  if (!sim::parse_scenario(sense_text, sense_scenario, err)) {
    std::fprintf(stderr, "warmup_bench: bad --sense-scenario: %s\n",
                 err.c_str());
    return 1;
  }
  schemes::SchemeSpec scheme;
  if (!schemes::parse_scheme_id(scheme_id, scheme)) {
    std::fprintf(stderr, "warmup_bench: unknown --scheme '%s'\n",
                 scheme_id.c_str());
    return 1;
  }

  const sim::SystemConfig cfg = scenario.system_config();
  const auto combos = scenario.combos();
  SNUG_REQUIRE_MSG(!combos.empty(), "scenario expands to no combos");
  const trace::WorkloadCombo combo = combos.front();

  sim::RunScale timing_scale = scenario.scale;
  timing_scale.warmup_cycles = static_cast<Cycle>(warm);
  timing_scale.measure_cycles = static_cast<Cycle>(measure);
  timing_scale.warmup_mode = sim::WarmupMode::kTiming;
  sim::RunScale functional_scale = timing_scale;
  functional_scale.warmup_mode = sim::WarmupMode::kFunctional;

  // Populate the bank once — the cost every campaign shares across all
  // points with the same warm prefix, paid outside the per-point timers
  // exactly as ExperimentRunner amortises it.
  std::filesystem::remove_all(bank_dir);
  sim::WarmStateBank bank(bank_dir);
  const std::uint64_t fingerprint =
      sim::warm_fingerprint(cfg, functional_scale, combo, scheme);
  const std::string bank_key = combo.name + "." + scheme_id;
  {
    sim::CmpSystem sys(cfg, scheme, combo, functional_scale);
    sys.warm_functional(functional_scale.warmup_cycles);
    bank.store(bank_key, fingerprint, sys.save_warm_state());
  }

  std::uint64_t checksum = 0;
  double cold_sec = 1e300;
  double functional_sec = 1e300;
  double bank_sec = 1e300;
  std::vector<double> cold_ipc;
  std::vector<double> functional_ipc;
  std::vector<double> bank_ipc;
  for (std::int64_t r = 0; r < rounds; ++r) {
    const PointResult cold = run_point(cfg, scheme, combo, timing_scale,
                                       WarmTier::kCold, nullptr, "", 0);
    const PointResult func =
        run_point(cfg, scheme, combo, functional_scale,
                  WarmTier::kFunctional, nullptr, "", 0);
    const PointResult bnk =
        run_point(cfg, scheme, combo, functional_scale, WarmTier::kBank,
                  &bank, bank_key, fingerprint);
    cold_sec = std::min(cold_sec, cold.seconds);
    functional_sec = std::min(functional_sec, func.seconds);
    bank_sec = std::min(bank_sec, bnk.seconds);
    if (r == 0) {
      cold_ipc = cold.ipc;
      functional_ipc = func.ipc;
      bank_ipc = bnk.ipc;
    }
    checksum += cold.checksum + func.checksum + bnk.checksum;
  }
  const double speedup_functional = cold_sec / functional_sec;
  const double speedup_bank = cold_sec / bank_sec;
  const double ipc_delta_functional = max_rel_delta(cold_ipc, functional_ipc);
  const double ipc_delta_bank = max_rel_delta(functional_ipc, bank_ipc);

  const SenseResult sense =
      monitor_sense(sense_scenario, static_cast<Cycle>(sense_warm),
                    static_cast<Cycle>(sense_measure), checksum);

  // Per-class sensitivity: one exact-vs-sampled pair per Table 8 class
  // mix at the 16-core scaling point.  The worst per-core delta of each
  // class feeds the record's `notes` field.
  std::vector<double> class_delta;
  std::string notes = strf(
      "monitor-sample=8 vs exact, Table 8 classes at 16 cores "
      "(warm %lld + measure %lld):",
      static_cast<long long>(sense_warm),
      static_cast<long long>(sense_measure));
  double class_delta_worst = 0.0;
  for (const SenseClass& cls : kSenseClasses) {
    sim::ScenarioSpec cls_scenario;
    const std::string cls_text = strf("name=sense%s cores=16 workload=%s",
                                      cls.name, cls.mix);
    SNUG_REQUIRE_MSG(sim::parse_scenario(cls_text, cls_scenario, err),
                     "bad class sense scenario '%s': %s", cls_text.c_str(),
                     err.c_str());
    const SenseResult r =
        monitor_sense(cls_scenario, static_cast<Cycle>(sense_warm),
                      static_cast<Cycle>(sense_measure), checksum);
    class_delta.push_back(r.max_delta);
    class_delta_worst = std::max(class_delta_worst, r.max_delta);
    notes += strf(" %s(%s) %.4f;", cls.name, cls.mix, r.max_delta);
  }
  notes += strf(" worst %.4f", class_delta_worst);

  std::printf("warmup_bench — %s, scheme %s, combo %s\n",
              scenario.summary().c_str(), scheme_id.c_str(),
              combo.name.c_str());
  std::printf("warm %lld + measure %lld cycles, best of %lld interleaved\n",
              static_cast<long long>(warm), static_cast<long long>(measure),
              static_cast<long long>(rounds));
  std::printf("%-24s %10s %10s\n", "tier", "seconds", "speedup");
  std::printf("%-24s %10.3f %10s\n", "cold (timing warm-up)", cold_sec, "1.00x");
  std::printf("%-24s %10.3f %9.2fx\n", "functional warm-up", functional_sec,
              speedup_functional);
  std::printf("%-24s %10.3f %9.2fx\n", "warm-state bank hit", bank_sec,
              speedup_bank);
  std::printf("measured IPC delta: functional vs cold %.4f, "
              "bank vs functional %.6f\n",
              ipc_delta_functional, ipc_delta_bank);
  std::printf("monitor-sample sensitivity (%s, warm %lld + measure %lld):\n",
              sense_scenario.summary().c_str(),
              static_cast<long long>(sense_warm),
              static_cast<long long>(sense_measure));
  std::printf("  sample=1 IPC [%s]\n", join_doubles(sense.ipc_exact).c_str());
  std::printf("  sample=8 IPC [%s]\n",
              join_doubles(sense.ipc_sampled).c_str());
  std::printf("  max per-core delta %.4f\n", sense.max_delta);
  std::printf("per-class sensitivity (Table 8 mixes at 16 cores):\n");
  for (std::size_t i = 0; i < std::size(kSenseClasses); ++i) {
    std::printf("  %s %-10s max delta %.4f\n", kSenseClasses[i].name,
                kSenseClasses[i].mix, class_delta[i]);
  }
  std::printf("(checksum %llu)\n",
              static_cast<unsigned long long>(checksum));

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warmup_bench: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"label\": \"%s\",\n"
                 "  \"scenario\": \"%s\",\n"
                 "  \"scheme\": \"%s\",\n"
                 "  \"warmup_cycles\": %lld,\n"
                 "  \"measure_cycles\": %lld,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"cold_sec\": %.4f,\n"
                 "  \"functional_sec\": %.4f,\n"
                 "  \"bank_sec\": %.4f,\n"
                 "  \"speedup_functional_vs_cold\": %.3f,\n"
                 "  \"speedup_bank_vs_cold\": %.3f,\n"
                 "  \"ipc_delta_functional_vs_cold\": %.4f,\n"
                 "  \"ipc_delta_bank_vs_functional\": %.6f,\n"
                 "  \"sense_scenario\": \"%s\",\n"
                 "  \"sense_warmup_cycles\": %lld,\n"
                 "  \"sense_measure_cycles\": %lld,\n"
                 "  \"sense_ipc_sample1\": [%s],\n"
                 "  \"sense_ipc_sample8\": [%s],\n"
                 "  \"sense_ipc_delta_max\": %.4f,\n"
                 "  \"sense_class_delta_max\": [%s],\n"
                 "  \"notes\": \"%s\",\n"
                 "  \"checksum\": %llu\n"
                 "}\n",
                 label.c_str(), scenario_text.c_str(), scheme_id.c_str(),
                 static_cast<long long>(warm),
                 static_cast<long long>(measure),
                 static_cast<long long>(rounds), cold_sec, functional_sec,
                 bank_sec, speedup_functional, speedup_bank,
                 ipc_delta_functional, ipc_delta_bank, sense_text.c_str(),
                 static_cast<long long>(sense_warm),
                 static_cast<long long>(sense_measure),
                 join_doubles(sense.ipc_exact).c_str(),
                 join_doubles(sense.ipc_sampled).c_str(), sense.max_delta,
                 join_doubles(class_delta).c_str(), notes.c_str(),
                 static_cast<unsigned long long>(checksum));
    std::fclose(f);
  }
  return 0;
}
