// Ablation: the taker threshold 1/p and the counter reset point.
// p controls how much hit-rate gain a set must promise before it may
// spill (paper Section 3.1.2 uses p = 8); the reset point decides whether
// unclassified sets default to giver (paper) or taker (this build's
// robust default — see DESIGN.md).
#include <cstdio>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "sim/figures.hpp"
#include "sim/runner.hpp"

using namespace snug;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  std::printf("Ablation: saturating-counter parameters (4xammp)\n\n");
  const trace::WorkloadCombo combo{"4xammp", 1,
                                   {"ammp", "ammp", "ammp", "ammp"}};
  const sim::RunScale scale = sim::default_run_scale();

  TextTable t({"p (threshold 1/p)", "reset point", "SNUG thr vs L2P"});
  for (const std::uint32_t p : {4U, 8U, 16U}) {
    for (const bool biased : {true, false}) {
      sim::SystemConfig cfg = sim::paper_system_config();
      cfg.scheme_ctx.snug.monitor.p = p;
      cfg.scheme_ctx.snug.monitor.taker_biased = biased;
      sim::ExperimentRunner runner(cfg, scale,
                                   sim::default_cache_dir() + "_counter");
      const auto base = runner.run(combo, {schemes::SchemeKind::kL2P, 0});
      const auto snug_result =
          runner.run(combo, {schemes::SchemeKind::kSNUG, 0});
      const double v = sim::metric_value(sim::Metric::kThroughputNorm,
                                         snug_result.ipc, base.ipc);
      t.add_row({strf("%u", p),
                 biased ? "2^(k-1), taker default"
                        : "2^(k-1)-1, paper",
                 pct(v - 1.0)});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}
