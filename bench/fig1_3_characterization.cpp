// Reproduces paper Figures 1-3: the distribution of set-level capacity
// demand (Formula 5) over 1000 sampling intervals of 100 K L2 accesses,
// for ammp (Figure 1, strongly non-uniform), vortex (Figure 2, phased)
// and applu (Figure 3, streaming/uniform).  Prints a sampled series of
// bucket-size rows plus the time-averaged distribution per benchmark.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/characterize.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "trace/synth_stream.hpp"

using namespace snug;

namespace {

void characterize_one(const std::string& bench, std::uint32_t intervals,
                      std::uint64_t interval_accesses, bool csv) {
  analysis::CharacterizationConfig cfg;
  cfg.intervals = intervals;
  cfg.interval_accesses = interval_accesses;

  trace::StreamConfig scfg;
  scfg.num_sets = cfg.l2.num_sets();
  scfg.phase_period_refs =
      static_cast<std::uint64_t>(intervals) * interval_accesses;
  scfg.stream_seed = 1;
  trace::SyntheticStream stream(trace::profile_for(bench), scfg);

  analysis::CharacterizationRunner runner(cfg);
  const auto result = runner.run_direct(stream);

  std::printf("\n=== %s: set-level capacity demand distribution ===\n",
              bench.c_str());
  std::printf("(%u intervals x %llu L2 accesses; %u sets; buckets over "
              "[1, %u])\n",
              intervals,
              static_cast<unsigned long long>(interval_accesses),
              cfg.l2.num_sets(), cfg.buckets.a_threshold);

  std::vector<std::string> header{"interval"};
  for (std::uint32_t j = 1; j <= cfg.buckets.num_buckets; ++j) {
    header.push_back(analysis::bucket_label(j, cfg.buckets));
  }
  TextTable table(header);
  const std::uint32_t step = intervals >= 10 ? intervals / 10 : 1;
  for (std::uint32_t i = 0; i < intervals; i += step) {
    std::vector<std::string> row{strf("%u", i + 1)};
    for (const double f : result.series[i]) {
      row.push_back(strf("%.1f%%", f * 100.0));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg_row{"mean"};
  for (std::uint32_t j = 1; j <= cfg.buckets.num_buckets; ++j) {
    avg_row.push_back(strf("%.1f%%", result.mean_fraction(j) * 100.0));
  }
  table.add_row(std::move(avg_row));
  std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto intervals = static_cast<std::uint32_t>(args.get_int(
      "intervals", 1000, "sampling intervals (paper: 1000)"));
  const auto interval_accesses = static_cast<std::uint64_t>(args.get_int(
      "interval-accesses", 100'000, "L2 accesses per interval (paper: 100000)"));
  const std::string only =
      args.get_string("benchmark", "", "characterise just one benchmark");
  const bool csv = args.get_bool("csv", false, "emit CSV tables");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  std::printf("Figures 1-3: set-level non-uniformity of capacity demand\n");
  const std::vector<std::string> benches =
      only.empty() ? std::vector<std::string>{"ammp", "vortex", "applu"}
                   : std::vector<std::string>{only};
  for (const auto& b : benches) {
    characterize_one(b, intervals, interval_accesses, csv);
  }
  std::printf(
      "\nPaper reference points: ammp keeps ~40%% of sets in the 1~4 "
      "bucket; vortex frees shallow sets between intervals ~405 and ~792; "
      "applu keeps ~100%% of sets in the 1~4 bucket.\n");
  return 0;
}
