// Lane bench — the measurement device behind the ISSUE 7 lane-parallel
// campaign engine.  Four tiers, each executing the *same* set of
// campaign points (build + timing warm-up + measured window per point)
// on one 8-core scenario, interleaved round-robin and reported
// best-of-N so OS noise cannot favour a tier:
//
//   scalar     — the pre-lane engine: one point at a time through
//                CmpSystem::run (Core::step scalar dispatch).
//   masked(1)  — one point at a time through run_masked: isolates the
//                free-running core-step win from the lane packing (the
//                lane-overhead break-even measurement).
//   W=4        — points packed four per LaneGroup, round-robin quanta.
//   W=8        — all eight points in one LaneGroup.
//
// Every tier simulates identical machines over identical windows, so
// the per-point IPC/cycle checksums must agree exactly across tiers —
// printed, recorded, and gated in CI (scalar-vs-lane bit-identity on
// real campaign workloads, complementing the unit-level equivalence
// tests).
//
// --json-out=FILE writes one JSON record tagged with --label;
// BENCH_lanes.json at the repo root keeps the recorded tiers
// (scripts/check_bench_regression.py gates checksum equality and the
// W=4 speedup).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "schemes/factory.hpp"
#include "sim/lane_engine.hpp"
#include "sim/scenario.hpp"
#include "sim/system.hpp"

namespace {

using namespace snug;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

std::uint64_t retired_instructions(sim::CmpSystem& sys,
                                   std::uint32_t cores) {
  std::uint64_t total = 0;
  for (CoreId c = 0; c < cores; ++c) total += sys.core(c).retired();
  return total;
}

struct TierResult {
  double seconds = 0.0;
  std::uint64_t instructions = 0;  ///< retired, warm-up + measurement
  std::uint64_t checksum = 0;      ///< end cycles + scaled measured IPCs
};

enum class Tier { kScalar, kMaskedW1, kGroup };

/// Runs every (combo, scheme-fixed) point of the campaign set once.
/// kScalar/kMaskedW1 run the points sequentially through run() /
/// run_masked(); kGroup packs them `width` per LaneGroup.
TierResult run_tier(const sim::SystemConfig& cfg,
                    const schemes::SchemeSpec& scheme,
                    const std::vector<trace::WorkloadCombo>& combos,
                    const sim::RunScale& scale, Tier tier,
                    std::size_t width) {
  TierResult out;
  const auto t0 = std::chrono::steady_clock::now();
  const auto finish_point = [&](sim::CmpSystem& sys) {
    out.instructions += retired_instructions(sys, cfg.num_cores);
    out.checksum += sys.now();
    for (const double v : sys.measured_ipc()) {
      out.checksum += static_cast<std::uint64_t>(v * 1e6);
    }
  };
  if (tier == Tier::kGroup) {
    for (std::size_t g0 = 0; g0 < combos.size(); g0 += width) {
      const std::size_t w =
          std::min<std::size_t>(width, combos.size() - g0);
      sim::LaneGroup group;
      for (std::size_t l = 0; l < w; ++l) {
        group.add_lane(std::make_unique<sim::CmpSystem>(
            cfg, scheme, combos[g0 + l], scale));
      }
      group.run(scale.warmup_cycles);
      for (std::size_t l = 0; l < w; ++l) {
        out.instructions +=
            retired_instructions(group.lane(l), cfg.num_cores);
        group.lane(l).begin_measurement();
      }
      group.run(scale.measure_cycles);
      for (std::size_t l = 0; l < w; ++l) finish_point(group.lane(l));
    }
  } else {
    for (const auto& combo : combos) {
      sim::CmpSystem sys(cfg, scheme, combo, scale);
      const bool masked = tier == Tier::kMaskedW1;
      if (masked) {
        sys.run_masked(scale.warmup_cycles);
      } else {
        sys.run(scale.warmup_cycles);
      }
      out.instructions += retired_instructions(sys, cfg.num_cores);
      sys.begin_measurement();
      if (masked) {
        sys.run_masked(scale.measure_cycles);
      } else {
        sys.run(scale.measure_cycles);
      }
      finish_point(sys);
    }
  }
  out.seconds = seconds_since(t0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snug;
  CliArgs args(argc, argv);
  const std::string scenario_text = args.get_string(
      "scenario", "name=lane8 cores=8 workload=1A+1C variants=8",
      "campaign scenario spec (variants= sets the point count)");
  const std::string scheme_id = args.get_string(
      "scheme", "SNUG", "L2 organisation for every point");
  const std::int64_t warm = args.get_int(
      "warmup-cycles", 250'000, "per-point warm-up window (core cycles)");
  const std::int64_t measure = args.get_int(
      "measure-cycles", 1'000'000,
      "per-point measured window (core cycles)");
  const std::int64_t rounds = args.get_int(
      "rounds", 3, "interleaved repetitions per tier (best-of)");
  const std::string json_out = args.get_string(
      "json-out", "", "write the results as one JSON record to this file");
  const std::string label = args.get_string(
      "label", "run", "label stored in the JSON record");
  const std::string notes = args.get_string(
      "notes", "", "free-form notes stored in the JSON record");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  sim::ScenarioSpec scenario;
  std::string err;
  if (!sim::parse_scenario(scenario_text, scenario, err)) {
    std::fprintf(stderr, "lane_bench: bad --scenario: %s\n", err.c_str());
    return 1;
  }
  schemes::SchemeSpec scheme;
  if (!schemes::parse_scheme_id(scheme_id, scheme)) {
    std::fprintf(stderr, "lane_bench: unknown --scheme '%s'\n",
                 scheme_id.c_str());
    return 1;
  }

  const sim::SystemConfig cfg = scenario.system_config();
  const std::vector<trace::WorkloadCombo> combos = scenario.combos();
  SNUG_REQUIRE_MSG(combos.size() >= 2,
                   "lane_bench needs >= 2 campaign points (use variants=)");
  sim::RunScale scale = scenario.scale;
  scale.warmup_cycles = static_cast<Cycle>(warm);
  scale.measure_cycles = static_cast<Cycle>(measure);
  scale.warmup_mode = sim::WarmupMode::kTiming;

  TierResult scalar, masked, w4, w8;
  scalar.seconds = masked.seconds = w4.seconds = w8.seconds = 1e300;
  const auto keep_best = [](TierResult& best, const TierResult& r) {
    if (r.seconds < best.seconds) best = r;
  };
  for (std::int64_t r = 0; r < rounds; ++r) {
    keep_best(scalar, run_tier(cfg, scheme, combos, scale, Tier::kScalar, 1));
    keep_best(masked,
              run_tier(cfg, scheme, combos, scale, Tier::kMaskedW1, 1));
    keep_best(w4, run_tier(cfg, scheme, combos, scale, Tier::kGroup, 4));
    keep_best(w8, run_tier(cfg, scheme, combos, scale, Tier::kGroup, 8));
  }
  const bool checksums_equal = scalar.checksum == masked.checksum &&
                               scalar.checksum == w4.checksum &&
                               scalar.checksum == w8.checksum;
  const double scalar_ips =
      static_cast<double>(scalar.instructions) / scalar.seconds;
  const double speedup_masked = scalar.seconds / masked.seconds;
  const double speedup_w4 = scalar.seconds / w4.seconds;
  const double speedup_w8 = scalar.seconds / w8.seconds;

  std::printf("lane_bench — %s, scheme %s, %zu points\n",
              scenario.summary().c_str(), scheme_id.c_str(), combos.size());
  std::printf("warm %lld + measure %lld cycles/point, best of %lld "
              "interleaved\n",
              static_cast<long long>(warm), static_cast<long long>(measure),
              static_cast<long long>(rounds));
  std::printf("%-18s %10s %14s %10s\n", "tier", "seconds", "instr/s",
              "speedup");
  const auto row = [](const char* name, const TierResult& t, double sp) {
    std::printf("%-18s %10.3f %14.3e %9.2fx\n", name, t.seconds,
                static_cast<double>(t.instructions) / t.seconds, sp);
  };
  row("scalar", scalar, 1.0);
  row("masked W=1", masked, speedup_masked);
  row("lanes W=4", w4, speedup_w4);
  row("lanes W=8", w8, speedup_w8);
  std::printf("checksums %s (scalar %llu)\n",
              checksums_equal ? "EQUAL across all tiers" : "MISMATCH",
              static_cast<unsigned long long>(scalar.checksum));
  if (!checksums_equal) {
    std::fprintf(stderr,
                 "lane_bench: tier checksums diverge — lane execution is "
                 "no longer bit-identical to scalar\n");
  }

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "lane_bench: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"label\": \"%s\",\n"
                 "  \"scenario\": \"%s\",\n"
                 "  \"scheme\": \"%s\",\n"
                 "  \"points\": %zu,\n"
                 "  \"warmup_cycles\": %lld,\n"
                 "  \"measure_cycles\": %lld,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"scalar_sec\": %.4f,\n"
                 "  \"masked_w1_sec\": %.4f,\n"
                 "  \"w4_sec\": %.4f,\n"
                 "  \"w8_sec\": %.4f,\n"
                 "  \"scalar_instr_per_sec\": %.4e,\n"
                 "  \"speedup_masked_w1\": %.3f,\n"
                 "  \"speedup_w4\": %.3f,\n"
                 "  \"speedup_w8\": %.3f,\n"
                 "  \"lane_checksum_equal\": %d,\n"
                 "  \"checksum\": %llu,\n"
                 "  \"notes\": \"%s\"\n"
                 "}\n",
                 label.c_str(), scenario_text.c_str(), scheme_id.c_str(),
                 combos.size(), static_cast<long long>(warm),
                 static_cast<long long>(measure),
                 static_cast<long long>(rounds), scalar.seconds,
                 masked.seconds, w4.seconds, w8.seconds, scalar_ips,
                 speedup_masked, speedup_w4, speedup_w8,
                 checksums_equal ? 1 : 0,
                 static_cast<unsigned long long>(scalar.checksum),
                 notes.c_str());
    std::fclose(f);
  }
  return checksums_equal ? 0 : 1;
}
