// campaignd — the campaign-as-a-service daemon (ISSUE 9 tentpole).
//
// A long-lived process that owns the shared EvalCache and a crash-safe
// simulation backlog.  Clients drop ScenarioSpec x scheme query files
// into <dir>/submit/ (wire protocol: src/sim/service/wire.hpp) and poll
// <dir>/answers/; cache-resident queries are answered immediately,
// misses are deduplicated into the journaled backlog and simulated by
// lease-supervised workers.  Kill -9 this process at any moment and
// restart it with the same flags: the backlog journal replays every
// completed cell and the surviving submit files re-supply every
// unanswered query — no query lost, none answered twice, answers
// bit-identical to an uninterrupted run (the CI chaos soak pins this).
//
//   campaignd --dir=svc --workers=4                 # serve forever
//   campaignd --dir=svc --idle-exit-polls=50        # drain and exit
//   campaignd --dir=svc --fault-plan="seed=7; enospc@write:p=0.1"
#include <csignal>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/fault.hpp"
#include "sim/runner.hpp"
#include "sim/service/client.hpp"
#include "sim/service/server.hpp"
#include "sim/service/wire.hpp"

namespace {

snug::sim::service::CampaignServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snug;
  CliArgs args(argc, argv);
  sim::service::ServiceConfig cfg;
  cfg.root = args.get_string(
      "dir", ".snug_campaignd",
      "service directory: submit/, answers/, backlog journal");
  cfg.cache_dir = args.get_string(
      "cache-dir", sim::default_cache_dir(),
      "shared simulation result cache (clients of other processes see "
      "entries this server publishes, and vice versa)");
  cfg.journal = args.get_string(
      "journal", "", "backlog journal path (default <dir>/backlog.journal)");
  cfg.workers = static_cast<unsigned>(
      args.get_int("workers", 2, "simulation worker threads"));
  cfg.max_backlog = static_cast<std::size_t>(args.get_int(
      "max-backlog", 256,
      "admission control: pending+leased cell bound; queries whose fresh "
      "cells would exceed it answer status=retry-after (0 = unbounded)"));
  cfg.lease_ms = static_cast<std::uint64_t>(args.get_int(
      "lease-ms", 10'000,
      "worker lease: a task whose lease goes unrenewed this long is "
      "reassigned to another worker"));
  cfg.max_holds = static_cast<std::uint32_t>(args.get_int(
      "max-holds", 3,
      "poison a task after this many lease grants (caps reassign loops)"));
  cfg.retry.max_attempts = static_cast<unsigned>(args.get_int(
      "retry-attempts", 3,
      "max attempts per cell on an injected transient failure"));
  cfg.retry.backoff_ms = static_cast<std::uint64_t>(args.get_int(
      "retry-backoff-ms", 10,
      "first retry backoff in ms, doubling per attempt (no jitter)"));
  cfg.retry_after_ms = static_cast<std::uint64_t>(args.get_int(
      "retry-after-ms", 250, "backoff hint sent with shed queries"));
  const std::int64_t poll_ms =
      args.get_int("poll-ms", 20, "serving-loop poll interval");
  const std::int64_t idle_exit = args.get_int(
      "idle-exit-polls", 0,
      "exit after this many consecutive idle polls — no new queries, "
      "empty backlog, no live lease (0 = serve until SIGINT/SIGTERM)");
  const std::string fault_plan_text = args.get_string(
      "fault-plan", "",
      "deterministic fault-injection plan (grammar in src/common/fault.hpp; "
      "service ops: fail@lease, fail@heartbeat)");
  const std::string ring_queries_file = args.get_string(
      "ring-queries", "",
      "submit the '<scheme>|<scenario>' lines of this file as ONE "
      "query-v2 batch through the in-process submit ring (publish=true: "
      "the answer file lands in <dir>/answers/ for kill/resume "
      "byte-diffing), then keep serving");
  const std::string ring_id = args.get_string(
      "ring-id", "ring-batch", "query id of the --ring-queries batch");
  const bool quiet = args.get_bool("quiet", false, "suppress the stats line");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  fault::FaultPlan plan;
  if (!fault_plan_text.empty()) {
    std::string error;
    if (!fault::FaultPlan::parse(fault_plan_text, plan, error)) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
      return 2;
    }
  }
  // Install before the server exists: the backlog journal and every
  // runner's stores capture fault::env() at construction.
  std::optional<fault::ScopedFaultPlan> faults;
  if (!plan.empty()) faults.emplace(plan);

  sim::service::ServiceBatchQuery ring_batch;
  ring_batch.id = ring_id;
  if (!ring_queries_file.empty()) {
    std::ifstream in(ring_queries_file);
    if (!in.good()) {
      std::fprintf(stderr, "campaignd: cannot read --ring-queries=%s\n",
                   ring_queries_file.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t sep = line.find('|');
      if (sep == std::string::npos || sep == 0 || sep + 1 == line.size()) {
        std::fprintf(stderr,
                     "campaignd: bad --ring-queries line '%s' (want "
                     "<scheme>|<scenario>)\n",
                     line.c_str());
        return 2;
      }
      sim::service::BatchItem item;
      item.scheme_id = line.substr(0, sep);
      item.scenario_text = line.substr(sep + 1);
      ring_batch.items.push_back(std::move(item));
    }
    if (ring_batch.items.empty()) {
      std::fprintf(stderr, "campaignd: --ring-queries=%s has no items\n",
                   ring_queries_file.c_str());
      return 2;
    }
  }

  // The ring client thread must JOIN after the server is destroyed: a
  // server killed by a signal mid-batch completes every accepted ring
  // op (status=error) only in its destructor, and the op's storage
  // lives on the client thread's stack.
  std::thread ringer;
  bool ring_ok = false;
  std::string ring_error;
  sim::service::ServiceBatchAnswer ring_answer;
  std::size_t passes = 0;
  sim::service::CampaignServer::Stats s;
  {
    sim::service::CampaignServer server(cfg);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (!quiet) {
      std::fprintf(stderr,
                   "campaignd: serving %s (cache %s, %u worker(s), backlog "
                   "cap %zu, lease %llu ms, %s)\n",
                   cfg.root.c_str(), cfg.cache_dir.c_str(), cfg.workers,
                   cfg.max_backlog,
                   static_cast<unsigned long long>(cfg.lease_ms),
                   idle_exit > 0 ? "drain-and-exit" : "until signalled");
    }
    if (!ring_batch.items.empty()) {
      ringer = std::thread([&server, &ring_batch, &ring_ok, &ring_answer,
                            &ring_error] {
        sim::service::RingClient ring(server);
        ring_ok = ring.query(ring_batch, ring_answer, /*publish=*/true,
                             &ring_error);
      });
    }
    passes = server.serve(
        idle_exit > 0 ? static_cast<std::size_t>(idle_exit) : 0,
        poll_ms > 0 ? static_cast<std::uint64_t>(poll_ms) : 1);
    s = server.stats();
    g_server = nullptr;
  }
  if (ringer.joinable()) ringer.join();
  if (!ring_batch.items.empty() && !quiet) {
    std::size_t ok_parts = 0;
    for (const sim::service::BatchPart& p : ring_answer.parts) {
      if (p.status == sim::service::AnswerStatus::kOk) ++ok_parts;
    }
    std::fprintf(stderr,
                 "campaignd: ring batch '%s': %zu item(s), %zu part(s) "
                 "answered ok%s%s\n",
                 ring_batch.id.c_str(), ring_batch.items.size(), ok_parts,
                 ring_ok ? "" : "; submit failed: ",
                 ring_ok ? "" : ring_error.c_str());
  }
  if (!quiet) {
    std::fprintf(
        stderr,
        "campaignd: %zu poll(s): %llu ingested, %llu answered (%llu "
        "rejected, %llu shed); cells %llu cached / %llu simulated / %llu "
        "journal-replayed, %llu retries; leases %llu granted / %llu "
        "denied / %llu expired (%llu reassigned, %llu poisoned); journal "
        "%llu stale reaped, %llu torn byte(s), %llu append failure(s); "
        "%llu cache entr(ies) visible\n",
        passes, static_cast<unsigned long long>(s.queries_ingested),
        static_cast<unsigned long long>(s.queries_answered),
        static_cast<unsigned long long>(s.queries_rejected),
        static_cast<unsigned long long>(s.queries_shed),
        static_cast<unsigned long long>(s.cells_from_cache),
        static_cast<unsigned long long>(s.cells_simulated),
        static_cast<unsigned long long>(s.backlog.journal_hits),
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.leases.granted),
        static_cast<unsigned long long>(s.leases.denied),
        static_cast<unsigned long long>(s.leases_expired),
        static_cast<unsigned long long>(s.reassignments),
        static_cast<unsigned long long>(s.leases.poisoned),
        static_cast<unsigned long long>(s.journal_stale_reaped),
        static_cast<unsigned long long>(s.journal_discarded_bytes),
        static_cast<unsigned long long>(s.journal_append_failures),
        static_cast<unsigned long long>(s.cache_entries_visible));
    std::fprintf(
        stderr,
        "campaignd: ring %llu submit(s) (%llu inline, %llu backlogged); "
        "batches %llu (%llu part(s): %llu rejected, %llu shed); index "
        "%llu entr(ies), %llu hit(s) / %llu miss(es), %llu rescan(s) "
        "over %llu epoch check(s); %llu submit scan(s) skipped; answers "
        "%llu reaped, %llu orphaned temp(s)\n",
        static_cast<unsigned long long>(s.ring_submits),
        static_cast<unsigned long long>(s.ring_inline_answers),
        static_cast<unsigned long long>(s.ring_backlogged),
        static_cast<unsigned long long>(s.batches_ingested),
        static_cast<unsigned long long>(s.parts_total),
        static_cast<unsigned long long>(s.parts_rejected),
        static_cast<unsigned long long>(s.parts_shed),
        static_cast<unsigned long long>(s.index.entries),
        static_cast<unsigned long long>(s.index.hits),
        static_cast<unsigned long long>(s.index.misses),
        static_cast<unsigned long long>(s.index.rescans),
        static_cast<unsigned long long>(s.index.epoch_checks),
        static_cast<unsigned long long>(s.submit_scans_skipped),
        static_cast<unsigned long long>(s.answers_reaped),
        static_cast<unsigned long long>(s.answer_temps_reaped));
    if (faults.has_value()) {
      const fault::FaultStats f = faults->stats();
      std::fprintf(stderr, "campaignd: %llu fault(s) injected\n",
                   static_cast<unsigned long long>(f.total()));
    }
  }
  g_server = nullptr;
  return 0;
}
