// Ablation: sensitivity to the SNUG epoch lengths (paper Section 3.4
// reports 5M/100M as the empirically good point at full scale).  Sweeps
// the identification-epoch length at a fixed identify:group ratio on the
// 4xammp stress test.
#include <cstdio>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "sim/figures.hpp"
#include "sim/runner.hpp"

using namespace snug;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  std::printf("Ablation: SNUG epoch lengths (4xammp, identify:group = "
              "1:4)\n\n");
  const trace::WorkloadCombo combo{"4xammp", 1,
                                   {"ammp", "ammp", "ammp", "ammp"}};
  TextTable t({"identify cycles", "group cycles", "SNUG thr vs L2P"});
  for (const Cycle identify :
       {Cycle{500'000}, Cycle{1'000'000}, Cycle{1'500'000},
        Cycle{3'000'000}}) {
    sim::SystemConfig cfg = sim::paper_system_config();
    cfg.scheme_ctx.snug.epochs.identify_cycles = identify;
    cfg.scheme_ctx.snug.epochs.group_cycles = identify * 4;
    sim::RunScale scale = sim::default_run_scale();
    // Warm past the second harvest for every epoch setting.
    scale.warmup_cycles = 2 * identify + identify * 4 + 1'000'000;
    scale.measure_cycles = identify * 5;
    sim::ExperimentRunner runner(cfg, scale,
                                 sim::default_cache_dir() + "_epochs");
    const auto base = runner.run(combo, {schemes::SchemeKind::kL2P, 0});
    const auto snug_result =
        runner.run(combo, {schemes::SchemeKind::kSNUG, 0});
    const double v = sim::metric_value(sim::Metric::kThroughputNorm,
                                       snug_result.ipc, base.ipc);
    t.add_row({strf("%llu", (unsigned long long)identify),
               strf("%llu", (unsigned long long)(identify * 4)),
               pct(v - 1.0)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nShort identification epochs misclassify sets (too few "
              "per-set events); very long ones delay regrouping.\n");
  return 0;
}
