// service_bench — measures the campaign service's query throughput at
// the two ends of the hit-ratio spectrum (ISSUE 9).
//
// An in-process CampaignServer (own temp service root + temp cache dir,
// so host state never leaks in) is driven by a ServiceClient through
// the real file-based wire protocol:
//
//   cold phase  N distinct (scenario, scheme) queries against an empty
//               cache — every cell is simulated through the backlog
//               (0% hit ratio).  queries/s here is dominated by
//               simulation, the floor of the service.
//   hit  phase  the same N queries under fresh ids — every cell is now
//               cache-resident, answered on the ingest path without
//               touching the backlog (100% hit ratio).  queries/s here
//               is the service overhead itself: file round-trip, parse,
//               fingerprint, cache probe, answer publish.
//
// ISSUE 10 adds the latency phases against a third warm server:
//
//   file latency  the same queries re-submitted SERIALLY over the file
//                 wire, one at a time — per-query round-trip
//                 percentiles (p50/p95/p99 µs), dominated by the submit
//                 poll interval and two file publishes.
//   ring  phase   the same queries as single-item batches through the
//                 in-process SubmitRing (RingClient, no files, no
//                 polling): the microsecond tier.  Percentiles plus
//                 queries/s, and every ring answer is compared
//                 bit-exactly against the cold phase's (ring_correct).
//
// Correctness is checked, not assumed: hit answers must equal the cold
// answers bit-exactly (%.17g IPC round-trip), and a sample of cold
// answers is re-simulated on an isolated cache-less runner and compared
// exactly.  --json-out records the rates and percentiles;
// BENCH_service.json at the repo root keeps them
// (scripts/check_bench_regression.py gates the hit/ring rates, the ring
// p50 ceiling, and all three correctness bits).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "schemes/factory.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/service/client.hpp"
#include "sim/service/server.hpp"
#include "sim/service/wire.hpp"

namespace {

using namespace snug;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

/// Nearest-rank percentile (p in [0,1]) over an unsorted sample set.
double percentile_us(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::int64_t n_queries = args.get_int(
      "queries", 6, "distinct (scenario, scheme) queries per phase");
  const std::int64_t workers =
      args.get_int("workers", 2, "server simulation workers");
  const std::int64_t warmup = args.get_int(
      "warmup-cycles", 10'000, "per-cell warm-up cycles");
  const std::int64_t measure = args.get_int(
      "measure-cycles", 40'000, "per-cell measured cycles");
  const std::int64_t latency_rounds = args.get_int(
      "latency-rounds", 30,
      "rounds over all queries in each warm latency phase (file and ring)");
  const std::string label =
      args.get_string("label", "service-v1", "record label");
  const std::string json_out = args.get_string(
      "json-out", "", "write the results as one JSON record to this file");
  const bool quiet = args.get_bool("quiet", false, "suppress progress");
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();

  // Distinct queries: explicit 4-core benchmark lists x a scheme cycle.
  const std::vector<std::string> mixes = {
      "ammp+gzip+mesa+parser", "vortex+swim+bzip2+mcf",
      "gzip+gzip+ammp+mesa",   "art+vpr+applu+apsi",
      "mesa+parser+gzip+swim", "mcf+ammp+vortex+bzip2",
      "bzip2+apsi+art+gzip",   "swim+mesa+mcf+vpr"};
  const std::vector<std::string> scheme_ids = {"SNUG", "DSR", "L2P",
                                               "CC(50%)"};
  std::vector<sim::service::ServiceQuery> queries;
  for (std::int64_t i = 0; i < n_queries; ++i) {
    sim::service::ServiceQuery q;
    q.scenario_text = strf(
        "name=svc%lld cores=4 workload=%s warmup-cycles=%lld "
        "measure-cycles=%lld",
        static_cast<long long>(i),
        mixes[static_cast<std::size_t>(i) % mixes.size()].c_str(),
        static_cast<long long>(warmup), static_cast<long long>(measure));
    q.scheme_id = scheme_ids[static_cast<std::size_t>(i) % scheme_ids.size()];
    queries.push_back(std::move(q));
  }

  namespace fs = std::filesystem;
  const fs::path base =
      fs::temp_directory_path() /
      strf("snug_service_bench_%ld", static_cast<long>(::getpid()));
  fs::remove_all(base);
  fs::create_directories(base);

  // The serving loop runs on its own thread; the bench thread plays the
  // client, exactly as separate processes would interact.
  const auto run_phase = [&](sim::service::CampaignServer& server,
                             const std::string& root, const std::string& tag)
      -> std::pair<double, std::vector<sim::service::ServiceAnswer>> {
    sim::service::ServiceClient client(root);
    std::jthread serving([&server] {
      server.serve(/*idle_exit_polls=*/0, /*poll_ms=*/1);
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      sim::service::ServiceQuery q = queries[i];
      q.id = strf("%s-%zu", tag.c_str(), i);
      std::string error;
      if (!client.submit(q, &error)) {
        std::fprintf(stderr, "service_bench: submit failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
    }
    std::vector<sim::service::ServiceAnswer> answers(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::string id = strf("%s-%zu", tag.c_str(), i);
      if (!client.wait(id, answers[i], /*timeout_ms=*/120'000)) {
        std::fprintf(stderr, "service_bench: timed out waiting for %s\n",
                     id.c_str());
        std::exit(1);
      }
      if (answers[i].status != sim::service::AnswerStatus::kOk) {
        std::fprintf(stderr, "service_bench: %s answered '%s'\n",
                     id.c_str(), answers[i].error.c_str());
        std::exit(1);
      }
    }
    const double sec = seconds_since(t0);
    server.request_stop();
    serving.join();
    return {sec, std::move(answers)};
  };

  sim::service::ServiceConfig cfg;
  cfg.root = (base / "svc").string();
  cfg.cache_dir = (base / "cache").string();
  cfg.workers = static_cast<unsigned>(workers > 0 ? workers : 1);
  if (!quiet) {
    std::fprintf(stderr,
                 "service_bench: %zu queries x 2 phases, %u worker(s)\n",
                 queries.size(), cfg.workers);
  }
  // Cold: server 1, empty cache — every cell simulates.
  double cold_sec = 0.0;
  std::vector<sim::service::ServiceAnswer> cold;
  sim::service::CampaignServer::Stats cold_stats;
  {
    sim::service::CampaignServer server(cfg);
    std::tie(cold_sec, cold) = run_phase(server, cfg.root, "cold");
    cold_stats = server.stats();
  }
  // Hit: a SECOND server instance (fresh service root and backlog, no
  // memory of the cold phase) sharing only the cache directory — the
  // multi-process EvalCache read-sharing path, as a restart or a second
  // campaignd on the same cache would see it.
  sim::service::ServiceConfig cfg2 = cfg;
  cfg2.root = (base / "svc2").string();
  cfg2.journal.clear();
  double hit_sec = 0.0;
  std::vector<sim::service::ServiceAnswer> hit;
  sim::service::CampaignServer::Stats hit_stats;
  {
    sim::service::CampaignServer server(cfg2);
    std::tie(hit_sec, hit) = run_phase(server, cfg2.root, "hit");
    hit_stats = server.stats();
  }

  // Latency phases (ISSUE 10): a THIRD server, warm on the shared
  // cache, kept serving while the bench thread measures individual
  // round-trips — serially, so each sample is one query's latency, not
  // a pipelined batch's.
  sim::service::ServiceConfig cfg3 = cfg;
  cfg3.root = (base / "svc3").string();
  cfg3.journal.clear();
  std::vector<double> file_us;
  std::vector<double> ring_us;
  double ring_sec = 0.0;
  std::size_t ring_queries = 0;
  bool ring_correct = true;
  sim::service::CampaignServer::Stats ring_stats;
  {
    sim::service::CampaignServer server(cfg3);
    std::jthread serving([&server] {
      server.serve(/*idle_exit_polls=*/0, /*poll_ms=*/1);
    });
    // File-wire warm latency: submit, then wait — one query in flight.
    sim::service::ServiceClient client(cfg3.root);
    for (std::int64_t r = 0; r < latency_rounds; ++r) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        sim::service::ServiceQuery q = queries[i];
        q.id = strf("lat-%lld-%zu", static_cast<long long>(r), i);
        sim::service::ServiceAnswer a;
        const auto t0 = std::chrono::steady_clock::now();
        std::string error;
        if (!client.submit(q, &error) ||
            !client.wait(q.id, a, /*timeout_ms=*/120'000,
                         /*poll_ms=*/1)) {
          std::fprintf(stderr, "service_bench: file latency query %s "
                       "failed: %s\n", q.id.c_str(), error.c_str());
          std::exit(1);
        }
        file_us.push_back(seconds_since(t0) * 1e6);
      }
    }
    // Ring warm latency: the same queries as single-item batches
    // through the in-process ring — no files, no polling.
    sim::service::RingClient ring(server);
    const auto ring_t0 = std::chrono::steady_clock::now();
    for (std::int64_t r = 0; r < latency_rounds; ++r) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        sim::service::ServiceBatchQuery q;
        q.id = strf("ring-%lld-%zu", static_cast<long long>(r), i);
        q.items.push_back({queries[i].scenario_text, queries[i].scheme_id});
        sim::service::ServiceBatchAnswer out;
        const auto t0 = std::chrono::steady_clock::now();
        std::string error;
        if (!ring.query(q, out, /*publish=*/false, &error)) {
          std::fprintf(stderr, "service_bench: ring query %s failed: %s\n",
                       q.id.c_str(), error.c_str());
          std::exit(1);
        }
        ring_us.push_back(seconds_since(t0) * 1e6);
        ++ring_queries;
        // Every ring answer must reproduce the cold answer bit-exactly.
        ring_correct =
            ring_correct && out.parts.size() == 1 &&
            out.parts[0].status == sim::service::AnswerStatus::kOk &&
            out.parts[0].cells.size() == cold[i].cells.size();
        for (std::size_t c = 0;
             ring_correct && c < out.parts[0].cells.size(); ++c) {
          ring_correct =
              out.parts[0].cells[c].combo == cold[i].cells[c].combo &&
              out.parts[0].cells[c].ipc == cold[i].cells[c].ipc;
        }
      }
    }
    ring_sec = seconds_since(ring_t0);
    ring_correct = ring_correct && ring.wire_fallbacks() == 0;
    server.request_stop();
    serving.join();
    ring_stats = server.stats();
  }
  const double qps_ring =
      ring_sec > 0 ? static_cast<double>(ring_queries) / ring_sec : 0.0;

  // Hit answers must reproduce the cold answers bit-exactly: same cells,
  // same order, same IPC doubles.
  bool hit_correct = cold.size() == hit.size();
  for (std::size_t i = 0; hit_correct && i < cold.size(); ++i) {
    hit_correct = cold[i].cells.size() == hit[i].cells.size();
    for (std::size_t c = 0; hit_correct && c < cold[i].cells.size(); ++c) {
      hit_correct = cold[i].cells[c].combo == hit[i].cells[c].combo &&
                    cold[i].cells[c].ipc == hit[i].cells[c].ipc;
    }
  }

  // A sample of cold answers re-simulated without any cache or service:
  // the service must not change a single bit of the science.
  bool miss_correct = true;
  const std::size_t sample = std::min<std::size_t>(2, queries.size());
  for (std::size_t i = 0; miss_correct && i < sample; ++i) {
    sim::ScenarioSpec spec;
    std::string error;
    if (!sim::parse_scenario(queries[i].scenario_text, spec, error)) {
      std::fprintf(stderr, "service_bench: %s\n", error.c_str());
      return 1;
    }
    schemes::SchemeSpec scheme;
    if (!schemes::parse_scheme_id(queries[i].scheme_id, scheme)) return 1;
    sim::ExperimentRunner isolated(spec, /*cache_dir=*/"",
                                   /*warm_bank_dir=*/"");
    const std::vector<trace::WorkloadCombo> combos = spec.combos();
    miss_correct = cold[i].cells.size() == combos.size();
    for (std::size_t c = 0; miss_correct && c < combos.size(); ++c) {
      const sim::RunResult r = isolated.run(combos[c], scheme);
      miss_correct = cold[i].cells[c].combo == combos[c].name &&
                     cold[i].cells[c].ipc == r.ipc;
    }
  }

  const double qps_cold =
      cold_sec > 0 ? static_cast<double>(queries.size()) / cold_sec : 0.0;
  const double qps_hit =
      hit_sec > 0 ? static_cast<double>(queries.size()) / hit_sec : 0.0;

  std::printf("service_bench — campaignd query throughput\n\n");
  std::printf("  queries per phase     %zu\n", queries.size());
  std::printf("  cold (0%% hit)         %8.3f s   %10.2f queries/s\n",
              cold_sec, qps_cold);
  std::printf("  hit  (100%% hit)       %8.3f s   %10.2f queries/s\n",
              hit_sec, qps_hit);
  std::printf("  cold: %llu cell(s) simulated; hit: %llu cell(s) served "
              "from the shared cache, %llu entr(ies) visible to the "
              "second server\n",
              static_cast<unsigned long long>(cold_stats.cells_simulated),
              static_cast<unsigned long long>(hit_stats.cells_from_cache),
              static_cast<unsigned long long>(
                  hit_stats.cache_entries_visible));
  std::printf("  ring (100%% hit)       %8.3f s   %10.2f queries/s\n",
              ring_sec, qps_ring);
  std::printf(
      "  warm hit latency        p50        p95        p99   (µs, %zu "
      "samples each)\n"
      "    file wire        %9.1f  %9.1f  %9.1f\n"
      "    submit ring      %9.1f  %9.1f  %9.1f\n",
      file_us.size(), percentile_us(file_us, 0.50),
      percentile_us(file_us, 0.95), percentile_us(file_us, 0.99),
      percentile_us(ring_us, 0.50), percentile_us(ring_us, 0.95),
      percentile_us(ring_us, 0.99));
  std::printf("  ring: %llu submit(s), %llu inline answer(s), index "
              "%llu hit(s) over %llu entr(ies)\n",
              static_cast<unsigned long long>(ring_stats.ring_submits),
              static_cast<unsigned long long>(
                  ring_stats.ring_inline_answers),
              static_cast<unsigned long long>(ring_stats.index.hits),
              static_cast<unsigned long long>(ring_stats.index.entries));
  std::printf("  hit answers == cold answers:   %s\n",
              hit_correct ? "EXACT" : "MISMATCH");
  std::printf("  ring answers == cold answers:  %s\n",
              ring_correct ? "EXACT" : "MISMATCH");
  std::printf("  cold answers == isolated runs: %s\n",
              miss_correct ? "EXACT" : "MISMATCH");

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "service_bench: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"label\": \"%s\",\n"
        "  \"queries\": %zu,\n"
        "  \"workers\": %u,\n"
        "  \"warmup_cycles\": %lld,\n"
        "  \"measure_cycles\": %lld,\n"
        "  \"cold_sec\": %.4f,\n"
        "  \"hit_sec\": %.4f,\n"
        "  \"queries_per_sec_cold\": %.2f,\n"
        "  \"queries_per_sec_hit\": %.2f,\n"
        "  \"queries_per_sec_ring\": %.2f,\n"
        "  \"file_hit_p50_us\": %.1f,\n"
        "  \"file_hit_p95_us\": %.1f,\n"
        "  \"file_hit_p99_us\": %.1f,\n"
        "  \"ring_hit_p50_us\": %.1f,\n"
        "  \"ring_hit_p95_us\": %.1f,\n"
        "  \"ring_hit_p99_us\": %.1f,\n"
        "  \"cells_simulated\": %llu,\n"
        "  \"cells_from_cache\": %llu,\n"
        "  \"hit_correct\": %d,\n"
        "  \"ring_correct\": %d,\n"
        "  \"miss_correct\": %d,\n"
        "  \"notes\": \"cold = server 1 on an empty cache, every cell "
        "simulated through the journaled backlog; hit = identical "
        "queries against a SECOND server instance sharing only the "
        "cache directory (multi-process EvalCache read-sharing), every "
        "cell answered from the answer-index without simulation; ring = "
        "single-item batches through the in-process submit ring of a "
        "THIRD warm server (no files, no polling), measured serially "
        "for per-query percentiles. file_hit percentiles are serial "
        "file-wire round-trips on the same warm server, dominated by "
        "the 1 ms submit poll. All correctness bits compare IPC doubles "
        "exactly against the cold answers.\"\n"
        "}\n",
        label.c_str(), queries.size(), cfg.workers,
        static_cast<long long>(warmup), static_cast<long long>(measure),
        cold_sec, hit_sec, qps_cold, qps_hit, qps_ring,
        percentile_us(file_us, 0.50), percentile_us(file_us, 0.95),
        percentile_us(file_us, 0.99), percentile_us(ring_us, 0.50),
        percentile_us(ring_us, 0.95), percentile_us(ring_us, 0.99),
        static_cast<unsigned long long>(cold_stats.cells_simulated),
        static_cast<unsigned long long>(hit_stats.cells_from_cache),
        hit_correct ? 1 : 0, ring_correct ? 1 : 0, miss_correct ? 1 : 0);
    std::fclose(f);
  }

  fs::remove_all(base);
  return hit_correct && ring_correct && miss_correct ? 0 : 1;
}
