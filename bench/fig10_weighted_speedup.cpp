// Reproduces paper Figure 10: average weighted speedup (arithmetic mean of
// per-core relative IPC vs. L2P) per workload class.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return snug::bench::run_figure_bench(argc, argv,
                                       snug::sim::Metric::kAws, "Figure 10");
}
