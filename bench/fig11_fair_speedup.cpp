// Reproduces paper Figure 11: fair speedup (harmonic mean of per-core
// relative IPC vs. L2P) per workload class.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return snug::bench::run_figure_bench(
      argc, argv, snug::sim::Metric::kFairSpeedup, "Figure 11");
}
