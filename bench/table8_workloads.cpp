// Reproduces paper Tables 6-8: benchmark classification, workload
// combination classes, and the 21 quad-core combinations, validated
// against the synthetic profile registry.
#include <cstdio>

#include "common/str.hpp"
#include "common/table.hpp"
#include "trace/profile.hpp"
#include "trace/workloads.hpp"

using namespace snug;

int main() {
  std::printf("Table 6: workload classification\n\n");
  TextTable t6({"class", "app-level demand", "set-level demand",
                "applications", "footprint check"});
  const auto row_for = [&](char cls, const char* app, const char* set) {
    std::string names;
    std::string checks;
    for (const auto& name : trace::benchmarks_in_class(cls)) {
      const auto& p = trace::profile_for(name);
      if (!names.empty()) names += ", ";
      names += name;
      if (!checks.empty()) checks += ", ";
      checks += strf("%.2fMB", p.footprint_bytes(1024, 64) / (1 << 20));
    }
    t6.add_row({std::string(1, cls), app, set, names, checks});
  };
  row_for('A', "> 1MB", "non-uniform");
  row_for('B', "< 1MB", "non-uniform");
  row_for('C', "> 1MB", "uniform");
  row_for('D', "< 1MB", "uniform");
  std::fputs(t6.render().c_str(), stdout);

  std::printf("\nTable 7/8: the 21 workload combinations\n\n");
  TextTable t8({"class", "description", "combination"});
  for (int cls = 1; cls <= 6; ++cls) {
    for (const auto& combo : trace::combos_in_class(cls)) {
      t8.add_row({strf("C%d", cls), trace::class_description(cls),
                  combo.name});
    }
  }
  std::fputs(t8.render().c_str(), stdout);
  std::printf("\n%zu combinations in total (paper: 21).\n",
              trace::all_combos().size());
  return 0;
}
