// Core-count scaling study — the repo's first beyond-the-paper result.
//
// The paper evaluates SNUG only on the quad-core Table 4 machine; this
// bench sweeps the same cooperative schemes across 2-, 4-, 8- and
// 16-core topologies built from one scenario template (per-core slices
// and the shared-L2 aggregate scale with the core count) and reports
// throughput, average weighted speedup and fair speedup per topology,
// each normalised to that topology's private-L2 baseline.  Workloads
// are generated class-pattern mixes (default 1A+1C: half set-level
// non-uniform big apps, half uniform big apps) expanded to each core
// count, so every topology runs the same *kind* of pressure.
//
//   $ ./scaling_study --jobs=8
//   $ ./scaling_study --cores=2,4,8 --mix=1A+1D --variants=3 --csv
//   $ ./scaling_study --dry-run          # print the grid, no simulation
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "figure_common.hpp"
#include "sim/campaign.hpp"
#include "sim/figures.hpp"
#include "stats/metrics.hpp"

using namespace snug;

namespace {

struct SchemeRow {
  std::string id;
  double throughput = 0.0;  ///< geomean over combos, normalised to L2P
  double aws = 0.0;
  double fair = 0.0;
};

/// One topology's aggregated results: geomean over the scenario's combos
/// of each metric vs the per-combo L2P baseline.
std::vector<SchemeRow> aggregate_scenario(
    const sim::CampaignSpec& spec, const sim::CampaignResults& results) {
  std::vector<SchemeRow> rows;
  for (const auto& scheme : spec.schemes) {
    const std::string id = scheme.id();
    std::vector<double> thr;
    std::vector<double> aws;
    std::vector<double> fair;
    for (const auto& [combo, combo_results] : results) {
      const auto& base = combo_results.at("L2P").ipc;
      const auto& ipc = combo_results.at(id).ipc;
      thr.push_back(
          sim::metric_value(sim::Metric::kThroughputNorm, ipc, base));
      aws.push_back(sim::metric_value(sim::Metric::kAws, ipc, base));
      fair.push_back(
          sim::metric_value(sim::Metric::kFairSpeedup, ipc, base));
    }
    rows.push_back({id, stats::geometric_mean(thr),
                    stats::geometric_mean(aws),
                    stats::geometric_mean(fair)});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string cores_list = args.get_string(
      "cores", "2,4,8,16", "comma-separated core counts to sweep");
  const std::string mix = args.get_string(
      "mix", "1A+1C",
      "class-pattern workload expanded to each core count (Table 6 "
      "classes A-D)");
  const std::int64_t variants =
      args.get_int("variants", 2, "generated mix instances per topology");
  const std::string scheme_list = args.get_string(
      "schemes", "L2P,L2S,CC(100%),DSR,SNUG",
      "comma-separated scheme ids (L2P is forced in as the baseline)");
  const std::string extra = args.get_string(
      "scenario", "",
      "extra scenario directives applied to every topology, e.g. "
      "\"l2-kb=512 dram-latency=400\"");
  const bool csv = args.get_bool("csv", false, "emit CSV instead of tables");
  const std::string cache_dir = args.get_string(
      "cache-dir", sim::default_cache_dir(), "simulation result cache");
  const bool quiet = args.get_bool("quiet", false, "suppress progress");
  const std::int64_t jobs = args.get_jobs();
  const std::int64_t warmup = args.get_int(
      "warmup-cycles", 0, "override warm-up cycles (0 = default scale)");
  const std::int64_t measure = args.get_int(
      "measure-cycles", 0, "override measured cycles (0 = default scale)");
  bench::RobustnessOpts robust;
  if (!bench::parse_robustness_flags(args, robust)) return 2;

  // ---- expand the scenario x scheme grid -------------------------------
  std::vector<schemes::SchemeSpec> grid{{schemes::SchemeKind::kL2P, 0.0}};
  for (const auto& id : split(scheme_list, ',')) {
    schemes::SchemeSpec parsed;
    if (!schemes::parse_scheme_id(id, parsed)) {
      std::fprintf(stderr, "unknown scheme id '%s'\n", id.c_str());
      return 1;
    }
    if (parsed.kind != schemes::SchemeKind::kL2P) grid.push_back(parsed);
  }

  std::vector<sim::CampaignSpec> sweep;
  for (const auto& cores : split(cores_list, ',')) {
    sim::ScenarioSpec scenario;
    std::string error;
    // 16-core topologies run the 1-in-8 sampled capacity monitors: at
    // that scale the exact monitors dominate the per-access cost while
    // the measured IPC is unchanged (the sensitivity table recorded in
    // BENCH_warmup.json shows a zero per-core delta — the counters
    // saturate long before harvest either way).  --scenario overrides
    // still win: `extra` is appended after, and later keys take
    // precedence.
    const std::string sampling =
        cores == "16" ? "monitor-sample=8 " : "";
    const std::string directives =
        strf("name=%sc cores=%s workload=%s variants=%lld %s%s",
             cores.c_str(), cores.c_str(), mix.c_str(),
             static_cast<long long>(variants), sampling.c_str(),
             extra.c_str());
    if (!sim::parse_scenario(directives, scenario, error)) {
      std::fprintf(stderr, "bad topology cores=%s: %s\n", cores.c_str(),
                   error.c_str());
      return 1;
    }
    if (warmup > 0) scenario.scale.warmup_cycles =
        static_cast<Cycle>(warmup);
    if (measure > 0) scenario.scale.measure_cycles =
        static_cast<Cycle>(measure);
    sweep.push_back({std::move(scenario), grid});
  }

  // ---- listing / dry-run flags ----------------------------------------
  const bool listed = bench::handle_grid_listings(args, sweep, &robust);
  if (args.help_requested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  args.check_unknown();
  if (listed) return 0;

  // ---- run every topology ---------------------------------------------
  std::size_t total_tasks = 0;
  for (const auto& spec : sweep) total_tasks += spec.size();
  if (!quiet) {
    std::fprintf(stderr,
                 "scaling study: %zu topologies, %zu tasks, %u worker(s), "
                 "cache %s\n",
                 sweep.size(), total_tasks, sim::resolve_jobs(jobs),
                 cache_dir.empty() ? "disabled" : cache_dir.c_str());
  }

  // The fault plan (if any) must be live before each runner is built:
  // the stores capture fault::env() at construction.
  std::optional<fault::ScopedFaultPlan> faults;
  robust.install(faults);

  ProgressMeter meter(!quiet);
  std::size_t done_before = 0;
  std::vector<std::vector<SchemeRow>> per_topology;
  for (const auto& spec : sweep) {
    sim::ExperimentRunner runner(spec.scenario, cache_dir);
    sim::CampaignEngine engine(runner, sim::resolve_jobs(jobs));
    bench::apply_robustness(robust, engine);
    // Each topology is its own campaign (distinct fingerprint), so each
    // journals to its own file; sharing one path would make topology N
    // move topology N-1's checkpoints aside as stale.
    if (!robust.journal.empty()) {
      engine.journal_path = robust.journal + "." + spec.scenario.name;
    }
    engine.on_progress = [&](const sim::CampaignProgress& p) {
      meter.report(done_before + p.done, total_tasks,
                   spec.scenario.name + ": " + p.combo + " / " + p.scheme,
                   p.replayed ? "(journal)"
                              : (p.cached ? "(cached)" : "simulated"));
    };
    const sim::CampaignResults results = engine.run(spec);
    bench::print_robustness_summary(
        engine, runner,
        /*force=*/faults.has_value() || !robust.journal.empty());
    done_before += spec.size();
    per_topology.push_back(aggregate_scenario(spec, results));
  }

  // ---- per-topology tables --------------------------------------------
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s\n", sweep[i].scenario.summary().c_str());
    TextTable table({"scheme", "throughput", "avg weighted speedup",
                     "fair speedup"});
    for (const auto& row : per_topology[i]) {
      table.add_row({row.id, strf("%.4f", row.throughput),
                     strf("%.4f", row.aws), strf("%.4f", row.fair)});
    }
    std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
    std::printf("\n");
  }

  // ---- cross-topology summary: throughput vs core count ---------------
  std::printf("throughput (normalised to each topology's L2P) vs cores\n");
  std::vector<std::string> header{"scheme"};
  for (const auto& spec : sweep) header.push_back(spec.scenario.name);
  TextTable summary(header);
  for (std::size_t s = 0; s < grid.size(); ++s) {
    std::vector<std::string> row{grid[s].id()};
    for (const auto& rows : per_topology) {
      row.push_back(strf("%.4f", rows[s].throughput));
    }
    summary.add_row(std::move(row));
  }
  std::fputs((csv ? summary.render_csv() : summary.render()).c_str(),
             stdout);
  return 0;
}
