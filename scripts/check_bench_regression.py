#!/usr/bin/env python3
"""Gate the hot-path bench against the committed BENCH baseline.

Usage:
    check_bench_regression.py MEASURED.json BASELINE.json [--min-ratio R]

MEASURED.json is a fresh `hot_path_bench --json-out` record.  BASELINE.json
is a committed BENCH_*.json file whose `baseline` object holds the
reference numbers (the slower, pre-refactor side — deliberately: CI runner
hardware differs from the machine that produced the baseline, and gating
against the pre numbers leaves that headroom while still catching real
regressions).  The gate checks the end-to-end run tier — the number every
campaign cycle actually pays:

    system_run_instr_per_sec      (the --scheme machine, default SNUG)
    system_run_l2p_instr_per_sec  (the L2P machine)

and fails when either falls below min-ratio x baseline (default 0.9,
i.e. a >10% regression).  Exit codes: 0 pass, 1 regression, 2 bad input.
"""

import argparse
import json
import sys

GATED_KEYS = ("system_run_instr_per_sec", "system_run_l2p_instr_per_sec")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="fresh hot_path_bench --json-out record")
    parser.add_argument("baseline", help="committed BENCH_*.json with a 'baseline' object")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="fail when measured/baseline drops below this (default 0.9)",
    )
    args = parser.parse_args()

    try:
        with open(args.measured) as f:
            measured = json.load(f)
        with open(args.baseline) as f:
            baseline_file = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_regression: cannot read inputs: {err}", file=sys.stderr)
        return 2

    baseline = baseline_file.get("baseline", baseline_file)
    failures = []
    for key in GATED_KEYS:
        ref = baseline.get(key)
        got = measured.get(key)
        if not isinstance(ref, (int, float)) or ref <= 0:
            print(f"check_bench_regression: baseline lacks {key}", file=sys.stderr)
            return 2
        if not isinstance(got, (int, float)) or got <= 0:
            print(f"check_bench_regression: measurement lacks {key}", file=sys.stderr)
            return 2
        ratio = got / ref
        status = "OK " if ratio >= args.min_ratio else "REGRESSION"
        print(f"{status} {key}: measured {got:,.0f} / baseline {ref:,.0f} = {ratio:.3f} "
              f"(floor {args.min_ratio:.2f})")
        if ratio < args.min_ratio:
            failures.append(key)

    if failures:
        print(f"check_bench_regression: run tier regressed >"
              f"{(1 - args.min_ratio) * 100:.0f}% on: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
