#!/usr/bin/env python3
"""Gate bench records against their committed BENCH baselines.

Usage:
    check_bench_regression.py MEASURED.json BASELINE.json \
        [MEASURED2.json BASELINE2.json ...] [--min-ratio R]

Positional arguments are (measured, baseline) pairs: each MEASURED.json
is a fresh `--json-out` record from one of the bench executables, each
BASELINE.json a committed BENCH_*.json whose `baseline` object (or the
record itself) holds the reference numbers — the slower, pre-refactor
side, deliberately: CI runner hardware differs from the machine that
produced the baseline, and gating against the pre numbers leaves that
headroom while still catching real regressions.

Two record kinds are recognised by shape:

  hot-path records (hot_path_bench): the end-to-end run tier — the
  number every campaign cycle actually pays —

      system_run_instr_per_sec      (the --scheme machine, default SNUG)
      system_run_l2p_instr_per_sec  (the L2P machine)

  fails when either falls below min-ratio x baseline (default 0.9,
  i.e. a >10% regression).

  warm-up records (warmup_bench, detected by `speedup_bank_vs_cold`):
  gated on absolute tiers rather than hardware-relative ratios —

      speedup_bank_vs_cold          >= 1.6   (the ISSUE 6 acceptance bar)
      ipc_delta_functional_vs_cold  <= 0.25  (equivalence-test band)
      ipc_delta_bank_vs_functional  == 0.0   (restore is bit-identical)

  lane records (lane_bench, detected by `speedup_w4`): gated on

      lane_checksum_equal           == 1     (lane execution stays
                                              bit-identical to scalar)
      speedup_w4                    >= 0.75  (the W=4 lane tier must not
                                              collapse; the recorded
                                              BENCH_lanes.json measures
                                              ~0.9-1.0x on the 1-core
                                              dev host — see its notes
                                              for the negative result
                                              vs the 1.5x target)

  service records (service_bench, detected by `queries_per_sec_hit`):
  gated on

      hit_correct                   == 1     (cache-hit answers are
                                              bit-identical to cold)
      miss_correct                  == 1     (cold answers match
                                              isolated re-simulation)
      ring_correct                  == 1     (in-process ring answers are
                                              bit-identical to cold)
      queries_per_sec_hit           >= 5.0   (the 100%-hit path — file
                                              round-trip + cache probe —
                                              must stay service-shaped,
                                              not simulation-shaped; the
                                              recorded BENCH_service.json
                                              measures ~2500 q/s)
      queries_per_sec_ring          >= 1000  (the in-process ring tier
                                              must stay memory-shaped;
                                              the recorded
                                              BENCH_service.json measures
                                              ~100k q/s — the floor only
                                              catches a collapse back to
                                              file-wire latency)
      ring_hit_p50_us               <= 750   (a warm ring hit must never
                                              pay a poll interval or a
                                              directory scan; recorded
                                              p50 is single-digit µs,
                                              the ceiling is a loose
                                              CI-hardware guard)

Bad inputs (missing, truncated, or corrupt JSON; records missing their
gate keys) fail with ONE line on stderr naming the offending file — a CI
log should never need spelunking to learn which artefact broke.

`--self-check` runs the built-in pytest-style test suite (gates and
error paths, against generated temp files) and exits 0/1; CI runs it
before trusting the gate.

Exit codes: 0 pass, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys
import tempfile

HOTPATH_KEYS = ("system_run_instr_per_sec", "system_run_l2p_instr_per_sec")

WARMUP_MIN_BANK_SPEEDUP = 1.6
WARMUP_MAX_FUNCTIONAL_IPC_DELTA = 0.25

LANE_MIN_W4_SPEEDUP = 0.75

SERVICE_MIN_HIT_QPS = 5.0
SERVICE_MIN_RING_QPS = 1000.0
SERVICE_MAX_RING_P50_US = 750.0


class InputError(Exception):
    """A bad input file; str(self) is the one-line, file-named message."""


def load(path):
    """Parses one record, classifying every failure by file name."""
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except FileNotFoundError:
        raise InputError(f"{path}: missing (bench did not write it?)")
    except OSError as err:
        raise InputError(f"{path}: unreadable ({err.strerror})")
    if not raw.strip():
        raise InputError(f"{path}: empty/truncated (0 JSON bytes)")
    try:
        record = json.loads(raw)
    except json.JSONDecodeError as err:
        kind = ("truncated" if err.pos >= len(raw.strip()) - 1
                else "corrupt")
        raise InputError(
            f"{path}: {kind} JSON ({err.msg} at line {err.lineno} "
            f"column {err.colno})")
    if not isinstance(record, dict):
        raise InputError(
            f"{path}: corrupt record (top level is "
            f"{type(record).__name__}, expected an object)")
    return record


def require_number(record, path, key, positive=False):
    got = record.get(key)
    if not isinstance(got, (int, float)) or isinstance(got, bool) or (
            positive and got <= 0):
        have = "missing" if key not in record else f"= {record[key]!r}"
        raise InputError(
            f"{path}: corrupt record (gate key '{key}' {have})")
    return got


def gate_hotpath(measured, baseline, min_ratio, measured_path,
                 baseline_path):
    failures = []
    for key in HOTPATH_KEYS:
        ref = require_number(baseline, baseline_path, key, positive=True)
        got = require_number(measured, measured_path, key, positive=True)
        ratio = got / ref
        status = "OK " if ratio >= min_ratio else "REGRESSION"
        print(f"{status} {key}: measured {got:,.0f} / baseline {ref:,.0f} "
              f"= {ratio:.3f} (floor {min_ratio:.2f})")
        if ratio < min_ratio:
            failures.append(key)
    return failures


def gate_fixed(measured, checks, measured_path):
    failures = []
    for key, ok, bound in checks:
        got = require_number(measured, measured_path, key)
        status = "OK " if ok(got) else "REGRESSION"
        print(f"{status} {key}: measured {got} (require {bound})")
        if not ok(got):
            failures.append(key)
    return failures


def gate_warmup(measured, measured_path):
    return gate_fixed(measured, (
        ("speedup_bank_vs_cold", lambda v: v >= WARMUP_MIN_BANK_SPEEDUP,
         f">= {WARMUP_MIN_BANK_SPEEDUP}"),
        ("ipc_delta_functional_vs_cold",
         lambda v: v <= WARMUP_MAX_FUNCTIONAL_IPC_DELTA,
         f"<= {WARMUP_MAX_FUNCTIONAL_IPC_DELTA}"),
        ("ipc_delta_bank_vs_functional", lambda v: v == 0.0, "== 0"),
    ), measured_path)


def gate_lane(measured, measured_path):
    return gate_fixed(measured, (
        ("lane_checksum_equal", lambda v: v == 1, "== 1"),
        ("speedup_w4", lambda v: v >= LANE_MIN_W4_SPEEDUP,
         f">= {LANE_MIN_W4_SPEEDUP}"),
    ), measured_path)


def gate_service(measured, measured_path):
    return gate_fixed(measured, (
        ("hit_correct", lambda v: v == 1, "== 1"),
        ("miss_correct", lambda v: v == 1, "== 1"),
        ("ring_correct", lambda v: v == 1, "== 1"),
        ("queries_per_sec_hit", lambda v: v >= SERVICE_MIN_HIT_QPS,
         f">= {SERVICE_MIN_HIT_QPS}"),
        ("queries_per_sec_ring", lambda v: v >= SERVICE_MIN_RING_QPS,
         f">= {SERVICE_MIN_RING_QPS}"),
        ("ring_hit_p50_us", lambda v: v <= SERVICE_MAX_RING_P50_US,
         f"<= {SERVICE_MAX_RING_P50_US}"),
    ), measured_path)


def run_pairs(files, min_ratio):
    """The gate proper: 0 pass, 1 regression; raises InputError."""
    failures = []
    for i in range(0, len(files), 2):
        measured_path, baseline_path = files[i], files[i + 1]
        measured = load(measured_path)
        baseline_file = load(baseline_path)
        baseline = baseline_file.get("baseline", baseline_file)
        print(f"-- {measured_path} vs {baseline_path}")
        if "speedup_bank_vs_cold" in measured:
            failures += gate_warmup(measured, measured_path)
        elif "speedup_w4" in measured:
            failures += gate_lane(measured, measured_path)
        elif "queries_per_sec_hit" in measured:
            failures += gate_service(measured, measured_path)
        else:
            failures += gate_hotpath(measured, baseline, min_ratio,
                                     measured_path, baseline_path)
    if failures:
        print(f"check_bench_regression: gate failed on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


# ---- self-check ----------------------------------------------------------
# A pytest-style micro-suite over generated temp files: every gate kind
# passing and regressing, plus every InputError path (missing, empty,
# truncated, corrupt, wrong-shape, gate key absent).  CI runs
# `--self-check` before trusting the gate, so a broken checker fails the
# build instead of waving regressions through.

def _write(dirname, name, text):
    path = os.path.join(dirname, name)
    with open(path, "w") as f:
        f.write(text)
    return path


def _expect(name, condition, detail=""):
    status = "ok" if condition else "FAILED"
    print(f"self-check {name} ... {status}{detail}")
    return condition


def _expect_input_error(name, fragment, *load_args):
    try:
        run_pairs(list(load_args), 0.9)
    except InputError as err:
        msg = str(err)
        return _expect(name, fragment in msg and "\n" not in msg,
                       f" [{msg}]" if fragment not in msg else "")
    return _expect(name, False, " [no InputError raised]")


def self_check():
    hot = json.dumps({k: 1000.0 for k in HOTPATH_KEYS})
    hot_slow = json.dumps({k: 100.0 for k in HOTPATH_KEYS})
    warm = json.dumps({"speedup_bank_vs_cold": 2.0,
                       "ipc_delta_functional_vs_cold": 0.1,
                       "ipc_delta_bank_vs_functional": 0.0})
    lane = json.dumps({"lane_checksum_equal": 1, "speedup_w4": 0.9})
    lane_bad = json.dumps({"lane_checksum_equal": 0, "speedup_w4": 0.9})
    service_ok = {"queries_per_sec_hit": 2500.0,
                  "queries_per_sec_ring": 100000.0,
                  "ring_hit_p50_us": 7.0,
                  "hit_correct": 1, "ring_correct": 1, "miss_correct": 1}
    service = json.dumps(service_ok)
    service_bad = json.dumps({**service_ok, "miss_correct": 0})
    service_slow = json.dumps({**service_ok, "queries_per_sec_hit": 2.0})
    service_ring_bad = json.dumps({**service_ok, "ring_correct": 0})
    service_ring_slow = json.dumps(
        {**service_ok, "queries_per_sec_ring": 200.0})
    service_ring_lat = json.dumps(
        {**service_ok, "ring_hit_p50_us": 5000.0})
    ok = True
    with tempfile.TemporaryDirectory(prefix="snug_gate_check") as d:
        hot_m = _write(d, "hot.json", hot)
        hot_b = _write(d, "hot_base.json",
                       json.dumps({"baseline": json.loads(hot)}))
        ok &= _expect("hotpath pass", run_pairs([hot_m, hot_b], 0.9) == 0)
        slow = _write(d, "hot_slow.json", hot_slow)
        ok &= _expect("hotpath regression",
                      run_pairs([slow, hot_b], 0.9) == 1)
        warm_m = _write(d, "warm.json", warm)
        ok &= _expect("warmup pass", run_pairs([warm_m, warm_m], 0.9) == 0)
        lane_m = _write(d, "lane.json", lane)
        ok &= _expect("lane pass", run_pairs([lane_m, lane_m], 0.9) == 0)
        lane_b = _write(d, "lane_bad.json", lane_bad)
        ok &= _expect("lane regression",
                      run_pairs([lane_b, lane_b], 0.9) == 1)
        svc_m = _write(d, "service.json", service)
        ok &= _expect("service pass", run_pairs([svc_m, svc_m], 0.9) == 0)
        svc_b = _write(d, "service_bad.json", service_bad)
        ok &= _expect("service correctness regression",
                      run_pairs([svc_b, svc_b], 0.9) == 1)
        svc_s = _write(d, "service_slow.json", service_slow)
        ok &= _expect("service throughput regression",
                      run_pairs([svc_s, svc_s], 0.9) == 1)
        svc_rb = _write(d, "service_ring_bad.json", service_ring_bad)
        ok &= _expect("service ring correctness regression",
                      run_pairs([svc_rb, svc_rb], 0.9) == 1)
        svc_rs = _write(d, "service_ring_slow.json", service_ring_slow)
        ok &= _expect("service ring throughput regression",
                      run_pairs([svc_rs, svc_rs], 0.9) == 1)
        svc_rl = _write(d, "service_ring_lat.json", service_ring_lat)
        ok &= _expect("service ring latency regression",
                      run_pairs([svc_rl, svc_rl], 0.9) == 1)
        svc_keyless = _write(
            d, "service_keyless.json",
            json.dumps({"queries_per_sec_hit": 2500.0, "hit_correct": 1}))
        ok &= _expect_input_error("service gate key absent", "gate key",
                                  svc_keyless, svc_m)
        svc_noring = _write(
            d, "service_noring.json",
            json.dumps({k: v for k, v in service_ok.items()
                        if not k.startswith("ring") and
                        k != "queries_per_sec_ring"}))
        ok &= _expect_input_error("service pre-ring record rejected",
                                  "gate key", svc_noring, svc_m)

        missing = os.path.join(d, "never_written.json")
        ok &= _expect_input_error("missing file", "missing", missing,
                                  hot_b)
        empty = _write(d, "empty.json", "")
        ok &= _expect_input_error("empty file", "empty/truncated", empty,
                                  hot_b)
        torn = _write(d, "torn.json", hot[: len(hot) // 2])
        ok &= _expect_input_error("truncated JSON", "JSON", torn, hot_b)
        corrupt = _write(d, "corrupt.json", "{\"a\": nope}")
        ok &= _expect_input_error("corrupt JSON", "corrupt JSON", corrupt,
                                  hot_b)
        listy = _write(d, "list.json", "[1, 2]")
        ok &= _expect_input_error("wrong shape", "top level is list",
                                  listy, hot_b)
        keyless = _write(d, "keyless.json", "{\"unrelated\": 3}")
        ok &= _expect_input_error("gate key absent", "gate key", keyless,
                                  hot_b)
    print("self-check:", "all passed" if ok else "FAILURES", file=sys.stderr)
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="(measured, baseline) JSON file pairs")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="hot-path gate: fail when measured/baseline drops below this "
             "(default 0.9)",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="run the built-in test suite against generated inputs and "
             "exit (CI runs this before trusting the gate)")
    args = parser.parse_args()
    if args.self_check:
        return self_check()
    if not args.files or len(args.files) % 2 != 0:
        print("check_bench_regression: arguments must be "
              "(measured, baseline) pairs", file=sys.stderr)
        return 2
    try:
        return run_pairs(args.files, args.min_ratio)
    except InputError as err:
        print(f"check_bench_regression: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
