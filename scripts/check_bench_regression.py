#!/usr/bin/env python3
"""Gate bench records against their committed BENCH baselines.

Usage:
    check_bench_regression.py MEASURED.json BASELINE.json \
        [MEASURED2.json BASELINE2.json ...] [--min-ratio R]

Positional arguments are (measured, baseline) pairs: each MEASURED.json
is a fresh `--json-out` record from one of the bench executables, each
BASELINE.json a committed BENCH_*.json whose `baseline` object (or the
record itself) holds the reference numbers — the slower, pre-refactor
side, deliberately: CI runner hardware differs from the machine that
produced the baseline, and gating against the pre numbers leaves that
headroom while still catching real regressions.

Two record kinds are recognised by shape:

  hot-path records (hot_path_bench): the end-to-end run tier — the
  number every campaign cycle actually pays —

      system_run_instr_per_sec      (the --scheme machine, default SNUG)
      system_run_l2p_instr_per_sec  (the L2P machine)

  fails when either falls below min-ratio x baseline (default 0.9,
  i.e. a >10% regression).

  warm-up records (warmup_bench, detected by `speedup_bank_vs_cold`):
  gated on absolute tiers rather than hardware-relative ratios —

      speedup_bank_vs_cold          >= 1.6   (the ISSUE 6 acceptance bar)
      ipc_delta_functional_vs_cold  <= 0.25  (equivalence-test band)
      ipc_delta_bank_vs_functional  == 0.0   (restore is bit-identical)

  lane records (lane_bench, detected by `speedup_w4`): gated on

      lane_checksum_equal           == 1     (lane execution stays
                                              bit-identical to scalar)
      speedup_w4                    >= 0.75  (the W=4 lane tier must not
                                              collapse; the recorded
                                              BENCH_lanes.json measures
                                              ~0.9-1.0x on the 1-core
                                              dev host — see its notes
                                              for the negative result
                                              vs the 1.5x target)

Exit codes: 0 pass, 1 regression, 2 bad input.
"""

import argparse
import json
import sys

HOTPATH_KEYS = ("system_run_instr_per_sec", "system_run_l2p_instr_per_sec")

WARMUP_MIN_BANK_SPEEDUP = 1.6
WARMUP_MAX_FUNCTIONAL_IPC_DELTA = 0.25

LANE_MIN_W4_SPEEDUP = 0.75


def load(path):
    with open(path) as f:
        return json.load(f)


def gate_hotpath(measured, baseline, min_ratio):
    failures = []
    for key in HOTPATH_KEYS:
        ref = baseline.get(key)
        got = measured.get(key)
        if not isinstance(ref, (int, float)) or ref <= 0:
            raise ValueError(f"baseline lacks {key}")
        if not isinstance(got, (int, float)) or got <= 0:
            raise ValueError(f"measurement lacks {key}")
        ratio = got / ref
        status = "OK " if ratio >= min_ratio else "REGRESSION"
        print(f"{status} {key}: measured {got:,.0f} / baseline {ref:,.0f} "
              f"= {ratio:.3f} (floor {min_ratio:.2f})")
        if ratio < min_ratio:
            failures.append(key)
    return failures


def gate_warmup(measured):
    checks = (
        ("speedup_bank_vs_cold", lambda v: v >= WARMUP_MIN_BANK_SPEEDUP,
         f">= {WARMUP_MIN_BANK_SPEEDUP}"),
        ("ipc_delta_functional_vs_cold",
         lambda v: v <= WARMUP_MAX_FUNCTIONAL_IPC_DELTA,
         f"<= {WARMUP_MAX_FUNCTIONAL_IPC_DELTA}"),
        ("ipc_delta_bank_vs_functional", lambda v: v == 0.0, "== 0"),
    )
    failures = []
    for key, ok, bound in checks:
        got = measured.get(key)
        if not isinstance(got, (int, float)):
            raise ValueError(f"measurement lacks {key}")
        status = "OK " if ok(got) else "REGRESSION"
        print(f"{status} {key}: measured {got} (require {bound})")
        if not ok(got):
            failures.append(key)
    return failures


def gate_lane(measured):
    checks = (
        ("lane_checksum_equal", lambda v: v == 1, "== 1"),
        ("speedup_w4", lambda v: v >= LANE_MIN_W4_SPEEDUP,
         f">= {LANE_MIN_W4_SPEEDUP}"),
    )
    failures = []
    for key, ok, bound in checks:
        got = measured.get(key)
        if not isinstance(got, (int, float)):
            raise ValueError(f"measurement lacks {key}")
        status = "OK " if ok(got) else "REGRESSION"
        print(f"{status} {key}: measured {got} (require {bound})")
        if not ok(got):
            failures.append(key)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+",
                        help="(measured, baseline) JSON file pairs")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="hot-path gate: fail when measured/baseline drops below this "
             "(default 0.9)",
    )
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        print("check_bench_regression: arguments must be "
              "(measured, baseline) pairs", file=sys.stderr)
        return 2

    failures = []
    for i in range(0, len(args.files), 2):
        measured_path, baseline_path = args.files[i], args.files[i + 1]
        try:
            measured = load(measured_path)
            baseline_file = load(baseline_path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"check_bench_regression: cannot read inputs: {err}",
                  file=sys.stderr)
            return 2
        baseline = baseline_file.get("baseline", baseline_file)
        print(f"-- {measured_path} vs {baseline_path}")
        try:
            if "speedup_bank_vs_cold" in measured:
                failed = gate_warmup(measured)
            elif "speedup_w4" in measured:
                failed = gate_lane(measured)
            else:
                failed = gate_hotpath(measured, baseline, args.min_ratio)
        except ValueError as err:
            print(f"check_bench_regression: {err}", file=sys.stderr)
            return 2
        failures.extend(failed)

    if failures:
        print(f"check_bench_regression: gate failed on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
